package obs

import (
	"sort"
	"strings"
)

// Labeled metrics: the registry keys instruments by plain string, so a
// labeled series is just a name with a canonical label suffix —
// `http.request.seconds{code="200",path="/v1/jobs"}`. Labeled builds
// that canonical key (labels sorted, values escaped the way the
// exposition format expects), Counter/Histogram look it up like any
// other name, and WritePrometheus regroups the series of one family
// under a single TYPE line. Keeping labels in the key means the hot
// path stays one map lookup and the registry needs no schema.

// Labeled returns the canonical registry key for a labeled series:
// name plus `{k="v",...}` with label names sorted and values escaped.
// kv alternates keys and values; a dangling key is dropped. With no
// pairs it returns name unchanged.
func Labeled(name string, kv ...string) string {
	n := len(kv) / 2
	if n == 0 {
		return name
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, n)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the exposition-format escapes (backslash,
// quote, newline) so the canonical key doubles as valid label syntax.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// splitLabels separates a registry key into its base name and the label
// body (without braces, "" when unlabeled).
func splitLabels(key string) (base, labels string) {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return key, ""
	}
	return key[:i], strings.TrimSuffix(key[i+1:], "}")
}

package obs

import "sync"

// Default Hub sizing: the replay buffer keeps this many events for late
// subscribers, and every subscriber channel gets this much headroom over
// the replayed prefix before a slow consumer starts losing events.
const (
	defaultHubBuffer = 4096
	hubSubSlack      = 256
)

// Hub is a Sink that records events into a bounded replay buffer and
// fans them out to live subscribers. It is the adapter between one
// run's event stream and any number of concurrent readers: a
// subscriber arriving mid-run first receives the buffered prefix, then
// live events, and the channel closes when the hub does.
//
// Emit never blocks the producing run: a subscriber whose channel is
// full loses events (counted per hub in Dropped), and events beyond
// the replay-buffer cap are delivered live but not retained.
type Hub struct {
	mu      sync.Mutex
	limit   int
	buf     []Event
	subs    map[*hubSub]struct{}
	closed  bool
	dropped int64
	// dropCounter, when set, mirrors every drop into a registry counter
	// so losses surface in the metrics exposition.
	dropCounter *Counter
	// mirror, when set, additionally receives every emitted event, even
	// past the replay cap; powderd points this at the process flight
	// recorder so each job's last seconds survive a crash.
	mirror Sink
}

type hubSub struct {
	ch   chan Event
	done bool // channel closed (hub close or cancel)
}

// NewHub returns a hub retaining up to limit events for replay
// (limit <= 0 uses the default of 4096).
func NewHub(limit int) *Hub {
	if limit <= 0 {
		limit = defaultHubBuffer
	}
	return &Hub{limit: limit, subs: make(map[*hubSub]struct{})}
}

// Emit records the event and delivers it to every live subscriber
// without blocking; a no-op after Close.
func (h *Hub) Emit(e Event) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	if len(h.buf) < h.limit {
		h.buf = append(h.buf, e)
	} else {
		h.dropped++
		h.dropCounter.Inc()
	}
	for s := range h.subs {
		select {
		case s.ch <- e:
		default:
			h.dropped++
			h.dropCounter.Inc()
		}
	}
	m := h.mirror
	h.mu.Unlock()
	// The mirror is invoked outside the hub lock: it has its own
	// synchronization and must not serialize against subscribers.
	if m != nil {
		m.Emit(e)
	}
}

// SetMirror attaches a sink that receives every event emitted on the
// hub, independent of the replay buffer and subscriber channels.
func (h *Hub) SetMirror(sink Sink) {
	h.mu.Lock()
	h.mirror = sink
	h.mu.Unlock()
}

// SetDropCounter attaches a registry counter (conventionally
// "obs.dropped.events") that mirrors every dropped delivery.
func (h *Hub) SetDropCounter(c *Counter) {
	h.mu.Lock()
	h.dropCounter = c
	h.mu.Unlock()
}

// Subscribe returns a channel that yields the buffered events followed
// by live ones; the channel is closed when the hub closes or cancel is
// called. cancel is idempotent and safe after close.
func (h *Hub) Subscribe() (events <-chan Event, cancel func()) {
	h.mu.Lock()
	s := &hubSub{ch: make(chan Event, len(h.buf)+hubSubSlack)}
	for _, e := range h.buf {
		s.ch <- e
	}
	if h.closed {
		s.done = true
		close(s.ch)
	} else {
		h.subs[s] = struct{}{}
	}
	h.mu.Unlock()
	return s.ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if !s.done {
			delete(h.subs, s)
			s.done = true
			close(s.ch)
		}
	}
}

// Close seals the hub: subscriber channels are closed after the events
// already delivered, and further Emit calls are dropped. Idempotent.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		s.done = true
		close(s.ch)
		delete(h.subs, s)
	}
}

// Events returns a snapshot of the replay buffer in emission order.
func (h *Hub) Events() []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Event(nil), h.buf...)
}

// Dropped returns how many event deliveries were lost to the replay cap
// or to slow subscribers.
func (h *Hub) Dropped() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}

// EventRecord flattens an event into the wire representation shared by
// JSONLSink and the service's NDJSON streams: the event fields plus the
// reserved keys "t" (RFC3339 nanosecond timestamp) and "event" (name).
func EventRecord(e Event) map[string]any {
	rec := make(map[string]any, len(e.Fields)+2)
	for k, v := range e.Fields {
		rec[k] = v
	}
	rec["t"] = e.Time.Format(timeFormat)
	rec["event"] = e.Name
	return rec
}

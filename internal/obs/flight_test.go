package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestFlightRecorderRingBounds(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Record("event", fmt.Sprintf("e%d", i), nil)
	}
	entries, total := f.Snapshot()
	if total != 10 {
		t.Errorf("total = %d, want 10", total)
	}
	if len(entries) != 4 {
		t.Fatalf("retained %d entries, want 4", len(entries))
	}
	// Oldest-first: the ring keeps the newest 4 of 10.
	for i, e := range entries {
		if want := fmt.Sprintf("e%d", 6+i); e.Name != want {
			t.Errorf("entry %d = %q, want %q (oldest-first)", i, e.Name, want)
		}
	}
}

func TestFlightRecorderAsSink(t *testing.T) {
	f := NewFlightRecorder(8)
	when := time.Unix(500, 0)
	f.Emit(Event{Time: when, Name: "apply", Fields: Fields{"node": "n42"}})
	entries, _ := f.Snapshot()
	if len(entries) != 1 {
		t.Fatalf("retained %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Kind != "event" || e.Name != "apply" || !e.Time.Equal(when) || e.Fields["node"] != "n42" {
		t.Errorf("sink entry = %+v", e)
	}

	var nilF *FlightRecorder
	nilF.Emit(Event{Name: "x"})    // must not panic
	nilF.Record("event", "x", nil) // must not panic
	if es, n := nilF.Snapshot(); es != nil || n != 0 {
		t.Error("nil recorder Snapshot should be empty")
	}
}

func TestFlightRecorderSampleMetricsDeltas(t *testing.T) {
	f := NewFlightRecorder(16)
	reg := NewRegistry()
	reg.Counter("a").Add(5)
	reg.Counter("b").Add(2)

	f.SampleMetrics(reg)
	reg.Counter("a").Add(3) // b stays put
	f.SampleMetrics(reg)
	f.SampleMetrics(reg) // nothing moved: no entry

	entries, _ := f.Snapshot()
	if len(entries) != 2 {
		t.Fatalf("retained %d entries, want 2 (idle sample skipped)", len(entries))
	}
	first, second := entries[0], entries[1]
	if first.Kind != "metric" || first.Fields["a"] != int64(5) || first.Fields["b"] != int64(2) {
		t.Errorf("first sample = %+v, want a=5 b=2", first)
	}
	if second.Fields["a"] != int64(3) {
		t.Errorf("second sample = %+v, want delta a=3", second)
	}
	if _, ok := second.Fields["b"]; ok {
		t.Errorf("second sample includes unmoved counter b: %+v", second)
	}
}

func TestFlightRecorderWriteJSONRoundTrip(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record("http", "GET /metrics", Fields{"code": 200})
	f.Record("panic", "pool-task", Fields{"panic": "boom"})

	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var dump FlightDump
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if dump.Total != 2 || len(dump.Entries) != 2 {
		t.Fatalf("dump = total %d, %d entries; want 2/2", dump.Total, len(dump.Entries))
	}
	if dump.Entries[1].Kind != "panic" || dump.Entries[1].Fields["panic"] != "boom" {
		t.Errorf("panic entry = %+v", dump.Entries[1])
	}

	var text bytes.Buffer
	f.WriteText(&text)
	if !strings.Contains(text.String(), "2 retained of 2 recorded") ||
		!strings.Contains(text.String(), "panic=boom") {
		t.Errorf("WriteText output:\n%s", text.String())
	}
}

func TestHubMirrorsToFlightRecorder(t *testing.T) {
	f := NewFlightRecorder(8)
	hub := NewHub(16)
	hub.SetMirror(f)
	hub.Emit(Event{Time: time.Unix(600, 0), Name: "harvest", Fields: Fields{"regions": 3}})
	entries, _ := f.Snapshot()
	if len(entries) != 1 || entries[0].Name != "harvest" {
		t.Fatalf("mirror delivered %d entries (%v), want the harvest event", len(entries), entries)
	}
	// Clearing the mirror stops the feed.
	hub.SetMirror(nil)
	hub.Emit(Event{Name: "apply"})
	if entries, _ := f.Snapshot(); len(entries) != 1 {
		t.Errorf("event recorded after mirror cleared: %v", entries)
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilEverythingIsNoOp(t *testing.T) {
	var o *Observer
	if o.Tracing() {
		t.Errorf("nil observer claims to trace")
	}
	o.Emit("x", Fields{"a": 1}) // must not panic
	if o.Metrics() != nil {
		t.Errorf("nil observer has metrics")
	}
	o.Counter("c").Inc()
	o.Counter("c").Add(5)
	if got := o.Counter("c").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	o.Histogram("h").Observe(1)
	o.Histogram("h").ObserveSince(time.Now())
	if o.Histogram("h").Count() != 0 || o.Histogram("h").Quantile(0.5) != 0 {
		t.Errorf("nil histogram not empty")
	}

	var r *Registry
	r.Counter("c").Inc()
	r.Histogram("h").Observe(1)
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty")
	}

	var p *PhaseSet
	p.Add("x", time.Second)
	p.Start("x")()
	if p.Snapshot() != nil {
		t.Errorf("nil phase set snapshot not nil")
	}
}

func TestNewCollapsesToNil(t *testing.T) {
	if New(nil, nil) != nil {
		t.Errorf("New(nil, nil) should be nil so the fast path stays free")
	}
	if Tee(nil, nil) != nil {
		t.Errorf("Tee(nil, nil) should be nil")
	}
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Errorf("Multi of no live sinks should be nil")
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("subs.applied")
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("subs.applied").Value(); got != workers*perWorker {
		t.Errorf("concurrent counter = %d, want %d", got, workers*perWorker)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// Uniform observations 1ms..1000ms.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if mean := h.Mean(); mean < 0.49 || mean > 0.52 {
		t.Errorf("mean = %v, want ~0.5005", mean)
	}
	if max := h.Max(); max != 1.0 {
		t.Errorf("max = %v, want 1.0", max)
	}
	// Geometric buckets (growth 2^(1/4)) bound the estimate's relative
	// error by ~19%; allow 20%.
	checks := []struct{ q, want float64 }{{0.50, 0.5}, {0.90, 0.9}, {0.99, 0.99}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.want*0.8 || got > c.want*1.25 {
			t.Errorf("q%v = %v, want within 20%% of %v", c.q, got, c.want)
		}
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(-5)
	h.Observe(1e12) // beyond the last bucket: clamps, still counted
	if h.Count() != 3 {
		t.Errorf("count = %d, want 3", h.Count())
	}
	if q := h.Quantile(0.01); q > histMin {
		t.Errorf("low quantile = %v, want <= %v", q, histMin)
	}
	if q := h.Quantile(1.0); q <= 0 {
		t.Errorf("high quantile = %v", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 20000 {
		t.Errorf("count = %d", h.Count())
	}
	if sum := h.Sum(); sum < 19.9 || sum > 20.1 {
		t.Errorf("sum = %v, want ~20", sum)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	o := New(NewJSONLSink(&buf), nil)
	if !o.Tracing() {
		t.Fatalf("observer with sink must trace")
	}
	o.Emit("apply", Fields{"kind": "OS2", "gain": 0.25})
	o.Emit("reject", Fields{"reason": "delay"})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if rec["event"] != "apply" || rec["kind"] != "OS2" {
		t.Errorf("bad apply record: %v", rec)
	}
	if _, err := time.Parse(time.RFC3339Nano, rec["t"].(string)); err != nil {
		t.Errorf("bad timestamp: %v", err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if rec["event"] != "reject" || rec["reason"] != "delay" {
		t.Errorf("bad reject record: %v", rec)
	}
}

func TestLineSinkFilterAndFormat(t *testing.T) {
	var lines []string
	s := NewLineSink(func(l string) { lines = append(lines, l) }, "apply")
	s.Emit(Event{Name: "reject", Fields: Fields{"reason": "stale"}})
	s.Emit(Event{Name: "apply", Fields: Fields{"msg": "OS2 n3<-n7", "gain": 0.5}})
	if len(lines) != 1 {
		t.Fatalf("filter passed %d lines, want 1", len(lines))
	}
	if lines[0] != "apply OS2 n3<-n7 gain=0.5" {
		t.Errorf("line = %q", lines[0])
	}

	// Unfiltered sink sees everything.
	var all []string
	NewLineSink(func(l string) { all = append(all, l) }).Emit(Event{Name: "x"})
	if len(all) != 1 || all[0] != "x" {
		t.Errorf("unfiltered = %v", all)
	}
}

func TestTeeAndMulti(t *testing.T) {
	var a, b bytes.Buffer
	reg := NewRegistry()
	o := Tee(New(NewJSONLSink(&a), reg), New(NewJSONLSink(&b), nil))
	o.Emit("ev", nil)
	if a.Len() == 0 || b.Len() == 0 {
		t.Errorf("tee did not fan out: a=%d b=%d", a.Len(), b.Len())
	}
	if o.Metrics() != reg {
		t.Errorf("tee lost the registry")
	}
	if got := Tee(nil, o); got != o {
		t.Errorf("Tee(nil, o) != o")
	}
}

func TestPhaseSet(t *testing.T) {
	p := NewPhaseSet()
	p.Add("harvest", 100*time.Millisecond)
	p.Add("check", 50*time.Millisecond)
	p.Add("harvest", 100*time.Millisecond)
	ps := p.Snapshot()
	if len(ps) != 2 {
		t.Fatalf("phases = %d, want 2", len(ps))
	}
	// First-seen order is stable.
	if ps[0].Name != "harvest" || ps[1].Name != "check" {
		t.Errorf("order = %v %v", ps[0].Name, ps[1].Name)
	}
	if ps[0].Count != 2 || ps[0].Seconds < 0.19 || ps[0].Seconds > 0.21 {
		t.Errorf("harvest stat = %+v", ps[0])
	}
	if total := ps.Seconds(); total < 0.24 || total > 0.26 {
		t.Errorf("total = %v", total)
	}
	if m := ps.Map(); m["check"] < 0.049 || m["check"] > 0.051 {
		t.Errorf("map = %v", m)
	}
	if _, ok := ps.Get("check"); !ok {
		t.Errorf("Get(check) missing")
	}
	if _, ok := ps.Get("nope"); ok {
		t.Errorf("Get(nope) found")
	}
	if s := ps.String(); !strings.Contains(s, "harvest") || !strings.Contains(s, "%") {
		t.Errorf("String() = %q", s)
	}

	stop := p.Start("timed")
	time.Sleep(time.Millisecond)
	stop()
	if st, ok := p.Snapshot().Get("timed"); !ok || st.Seconds <= 0 {
		t.Errorf("Start/stop did not record: %+v", st)
	}
}

func TestRegistrySnapshotAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Histogram("h").Observe(0.5)
	snap := r.Snapshot()
	if snap.Counters["a"] != 3 {
		t.Errorf("counters = %v", snap.Counters)
	}
	hs := snap.Histograms["h"]
	if hs.Count != 1 || hs.Sum != 0.5 {
		t.Errorf("histogram snapshot = %+v", hs)
	}
	var buf bytes.Buffer
	snap.WriteText(&buf)
	out := buf.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "count=1") {
		t.Errorf("text = %q", out)
	}
	// Snapshot must be JSON-serializable for the metrics event.
	if _, err := json.Marshal(snap); err != nil {
		t.Errorf("snapshot not marshalable: %v", err)
	}
}

// BenchmarkDisabledEmit measures the nil fast path: the per-event cost
// with observability off must stay in the nanosecond range.
func BenchmarkDisabledEmit(b *testing.B) {
	var o *Observer
	for i := 0; i < b.N; i++ {
		if o.Tracing() {
			o.Emit("apply", Fields{"i": i})
		}
		o.Counter("c").Inc()
	}
}

package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a concurrency-safe collection of named counters and
// histograms. The zero value is not usable; NewRegistry allocates one. A
// nil *Registry is a valid disabled registry: lookups return nil
// instruments, whose methods are no-ops.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use; nil when
// the registry is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram (default bucket layout), creating
// it on first use; nil when the registry is nil.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Counter is an atomic monotonic counter. A nil Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram bucket layout: geometric buckets growing by histGrowth per
// step from histMin. With growth 2^(1/4) the quantile estimate's relative
// error is bounded by ~19%; 168 buckets span ~1e-7 .. ~4e5, covering
// nanosecond timers through hours as well as the power-gain magnitudes
// the pipeline records.
const (
	histMin     = 1e-7
	histBuckets = 168
)

var (
	histGrowth    = math.Pow(2, 0.25)
	histInvLogG   = 1 / math.Log(histGrowth)
	histLogMin    = math.Log(histMin)
	histUpperOnce sync.Once
	histUpper     [histBuckets]float64
)

func bucketUpper(i int) float64 {
	histUpperOnce.Do(func() {
		for b := 0; b < histBuckets; b++ {
			histUpper[b] = histMin * math.Pow(histGrowth, float64(b))
		}
	})
	return histUpper[i]
}

// Histogram records float64 observations (typically seconds) into
// geometric buckets with atomic updates. A nil Histogram is a no-op.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomicFloat
	max     atomicFloat
}

// NewHistogram returns an empty histogram with the default bucket layout.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one value. Non-positive and NaN values clamp into the
// lowest bucket (counted, not summed as garbage).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) || v < 0 {
		v = 0
	}
	i := 0
	if v > histMin {
		i = int(math.Ceil((math.Log(v) - histLogMin) * histInvLogG))
		if i >= histBuckets {
			i = histBuckets - 1
		}
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.max.storeMax(v)
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return h.max.load()
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) from
// the bucket cumulative counts; the estimate's relative error is bounded
// by the bucket growth factor (~19%). Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// atomicFloat is a float64 with atomic add and max via CAS on the bits.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) add(d float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) storeMax(v float64) {
	for {
		old := f.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time summary of one histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Snapshot summarizes the registry for reporting. The maps are fresh
// copies; a nil registry snapshots as empty.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the current registry contents.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = HistogramSnapshot{
			Count: h.Count(),
			Sum:   h.Sum(),
			Mean:  h.Mean(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
			Max:   h.Max(),
		}
	}
	return s
}

// WriteText renders the snapshot as aligned human-readable lines.
func (s Snapshot) WriteText(w io.Writer) {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%-40s %12d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(w, "%-40s count=%d sum=%.6g mean=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g\n",
			n, h.Count, h.Sum, h.Mean, h.P50, h.P90, h.P99, h.Max)
	}
}

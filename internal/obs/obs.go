// Package obs is the observability layer of the POWDER pipeline: a
// structured event sink (JSON Lines), an atomic metrics registry of
// counters and histograms, named phase timers, and pprof profiling
// helpers.
//
// Everything is stdlib-only and nil-safe: every method works on a nil
// receiver as a cheap no-op, so instrumented code pays ~nothing when
// observability is disabled. Hot paths should additionally guard event
// construction with Observer.Tracing() so field maps are never built
// when no sink is attached.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Fields carries the structured payload of one event.
type Fields map[string]any

// Event is one structured trace record.
type Event struct {
	// Time is the emission timestamp.
	Time time.Time
	// Name identifies the event kind ("harvest", "check", "apply",
	// "reject", "progress", "metrics", ...).
	Name string
	// Fields holds the event payload.
	Fields Fields
}

// Sink receives structured events. Implementations must be safe for
// concurrent use.
type Sink interface {
	Emit(e Event)
}

// SinkFunc adapts a plain function into a Sink.
type SinkFunc func(Event)

// Emit calls the function.
func (f SinkFunc) Emit(e Event) { f(e) }

// Observer bundles an event sink and a metrics registry; either (or the
// Observer itself) may be nil.
type Observer struct {
	sink    Sink
	metrics *Registry
}

// New returns an observer over the sink and registry; it returns nil when
// both are nil, preserving the disabled fast path.
func New(sink Sink, metrics *Registry) *Observer {
	if sink == nil && metrics == nil {
		return nil
	}
	return &Observer{sink: sink, metrics: metrics}
}

// Tracing reports whether an event sink is attached. Call this before
// building a Fields map on a hot path.
func (o *Observer) Tracing() bool { return o != nil && o.sink != nil }

// Emit sends one event to the sink; a no-op without one.
func (o *Observer) Emit(name string, fields Fields) {
	if o == nil || o.sink == nil {
		return
	}
	o.sink.Emit(Event{Time: time.Now(), Name: name, Fields: fields})
}

// Metrics returns the attached registry, or nil.
func (o *Observer) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.metrics
}

// Counter returns the named counter of the attached registry (nil without
// one; a nil Counter is a no-op).
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.metrics.Counter(name)
}

// Histogram returns the named histogram of the attached registry (nil
// without one; a nil Histogram is a no-op).
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.metrics.Histogram(name)
}

// Tee returns an observer that forwards events to both observers' sinks
// and exposes the first non-nil registry. Either argument may be nil.
func Tee(a, b *Observer) *Observer {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	reg := a.metrics
	if reg == nil {
		reg = b.metrics
	}
	return New(Multi(a.sink, b.sink), reg)
}

// Multi fans one event out to every non-nil sink; it returns nil when
// none remain.
func Multi(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiSink(live)
}

type multiSink []Sink

func (m multiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// JSONLSink writes one JSON object per event to an io.Writer (the
// JSON Lines trace format).
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLSink returns a sink encoding events as JSON Lines on w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// timeFormat is the timestamp layout of the serialized event formats.
const timeFormat = time.RFC3339Nano

// Emit writes the event as one JSON line: the reserved keys "t" (RFC3339
// nanosecond timestamp) and "event" (name) plus the event fields.
func (s *JSONLSink) Emit(e Event) {
	rec := EventRecord(e)
	s.mu.Lock()
	defer s.mu.Unlock()
	// Encoding errors are swallowed: tracing must never fail the run.
	_ = s.enc.Encode(rec)
}

// LineSink adapts a line-oriented func(string) callback (the legacy
// core.Options.Trace / expt.RunOptions.Progress contract) into a Sink.
// When names are given, only events with those names are rendered.
type LineSink struct {
	fn    func(string)
	names map[string]bool
}

// NewLineSink wraps fn; events outside names (when non-empty) are dropped.
func NewLineSink(fn func(string), names ...string) *LineSink {
	s := &LineSink{fn: fn}
	if len(names) > 0 {
		s.names = make(map[string]bool, len(names))
		for _, n := range names {
			s.names[n] = true
		}
	}
	return s
}

// Emit renders the event as one text line. A "msg" field renders verbatim
// after the name; remaining fields append as sorted key=value pairs.
func (s *LineSink) Emit(e Event) {
	if s.names != nil && !s.names[e.Name] {
		return
	}
	s.fn(FormatLine(e))
}

// FormatLine renders an event in the LineSink text format.
func FormatLine(e Event) string {
	parts := []string{e.Name}
	if msg, ok := e.Fields["msg"].(string); ok {
		parts = append(parts, msg)
	}
	keys := make([]string, 0, len(e.Fields))
	for k := range e.Fields {
		if k != "msg" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, e.Fields[k]))
	}
	return join(parts)
}

func join(parts []string) string {
	out := parts[0]
	for _, p := range parts[1:] {
		out += " " + p
	}
	return out
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// FlightRecorder is the always-on postmortem buffer: a fixed ring of
// the most recent observability moments — events, completed spans,
// HTTP requests, and periodic metric deltas — kept regardless of
// whether sampling or tracing is enabled, so a crash or a hung daemon
// can always be explained from its last seconds of history. Recording
// is one mutex acquisition and a slot overwrite (no allocation beyond
// the caller's field map), cheap enough to leave on permanently.
//
// The recorder implements Sink, so it can be Multi'd behind any event
// hub; powderd additionally mirrors job spans and HTTP requests into
// it and dumps it at GET /debug/flight, on panic, and on SIGQUIT.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []FlightEntry
	head  int
	limit int
	total int64
	last  map[string]int64 // previous counter values for SampleMetrics
}

// FlightEntry is one recorded moment.
type FlightEntry struct {
	Time time.Time `json:"time"`
	// Kind classifies the entry: "event" (hub event), "span" (completed
	// trace span), "http" (served request), "metric" (counter deltas
	// since the previous sample), "panic", "signal".
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	Fields Fields `json:"fields,omitempty"`
}

// DefaultFlightLimit is the ring capacity of the process-wide recorder.
const DefaultFlightLimit = 4096

// flight is the process-wide recorder handed out by Flight.
var flight = NewFlightRecorder(DefaultFlightLimit)

// Flight returns the process-wide flight recorder. It is always live;
// binaries that never dump it pay only the recording cost.
func Flight() *FlightRecorder { return flight }

// NewFlightRecorder returns a recorder bounded to limit entries (<= 0
// chooses DefaultFlightLimit).
func NewFlightRecorder(limit int) *FlightRecorder {
	if limit <= 0 {
		limit = DefaultFlightLimit
	}
	return &FlightRecorder{limit: limit, last: make(map[string]int64)}
}

// Record adds one entry, overwriting the oldest when full. A nil
// recorder is a no-op.
func (f *FlightRecorder) Record(kind, name string, fields Fields) {
	if f == nil {
		return
	}
	e := FlightEntry{Time: time.Now(), Kind: kind, Name: name, Fields: fields}
	f.mu.Lock()
	if len(f.ring) < f.limit {
		f.ring = append(f.ring, e)
	} else {
		f.ring[f.head] = e
		f.head = (f.head + 1) % f.limit
	}
	f.total++
	f.mu.Unlock()
}

// Emit implements Sink: hub events mirror into the ring as "event"
// entries.
func (f *FlightRecorder) Emit(e Event) {
	if f == nil {
		return
	}
	fe := FlightEntry{Time: e.Time, Kind: "event", Name: e.Name, Fields: e.Fields}
	f.mu.Lock()
	if len(f.ring) < f.limit {
		f.ring = append(f.ring, fe)
	} else {
		f.ring[f.head] = fe
		f.head = (f.head + 1) % f.limit
	}
	f.total++
	f.mu.Unlock()
}

// SampleMetrics records the counter deltas since the previous sample as
// one "metric" entry (skipped when nothing moved). powderd runs this on
// a ticker and before every dump, so the ring carries a coarse rate
// history next to the discrete events.
func (f *FlightRecorder) SampleMetrics(r *Registry) {
	if f == nil || r == nil {
		return
	}
	snap := r.Snapshot()
	f.mu.Lock()
	deltas := make(Fields)
	for name, v := range snap.Counters {
		if d := v - f.last[name]; d != 0 {
			deltas[name] = d
		}
		f.last[name] = v
	}
	f.mu.Unlock()
	if len(deltas) > 0 {
		f.Record("metric", "counter-deltas", deltas)
	}
}

// Snapshot returns the retained entries oldest-first, plus how many
// entries were recorded in total (total - len(entries) were
// overwritten).
func (f *FlightRecorder) Snapshot() (entries []FlightEntry, total int64) {
	if f == nil {
		return nil, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	entries = make([]FlightEntry, 0, len(f.ring))
	entries = append(entries, f.ring[f.head:]...)
	entries = append(entries, f.ring[:f.head]...)
	return entries, f.total
}

// FlightDump is the serialized form of a recorder snapshot.
type FlightDump struct {
	Now     time.Time     `json:"now"`
	Total   int64         `json:"total"`
	Entries []FlightEntry `json:"entries"`
}

// WriteJSON dumps the snapshot as one JSON document (the /debug/flight
// response body).
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	entries, total := f.Snapshot()
	if entries == nil {
		entries = []FlightEntry{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(FlightDump{Now: time.Now(), Total: total, Entries: entries})
}

// WriteText dumps the snapshot as aligned lines, oldest first (the
// panic/SIGQUIT stderr format).
func (f *FlightRecorder) WriteText(w io.Writer) {
	entries, total := f.Snapshot()
	fmt.Fprintf(w, "flight recorder: %d retained of %d recorded\n", len(entries), total)
	for _, e := range entries {
		fmt.Fprintf(w, "%s %-6s %s", e.Time.Format(time.RFC3339Nano), e.Kind, e.Name)
		keys := make([]string, 0, len(e.Fields))
		for k := range e.Fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%v", k, e.Fields[k])
		}
		fmt.Fprintln(w)
	}
}

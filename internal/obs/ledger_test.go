package obs

import (
	"fmt"
	"math"
	"testing"
)

func TestNilLedgerIsNoOp(t *testing.T) {
	var l *Ledger
	l.Record(LedgerAttempt{Outcome: LedgerApplied, RealizedGain: 1})
	l.CountReject("stale")
	if s := l.Summary(); s != nil {
		t.Fatalf("nil ledger summary = %+v, want nil", s)
	}
	var s *LedgerSummary
	if b := s.Brief(); b != nil {
		t.Fatalf("nil summary Brief = %+v, want nil", b)
	}
}

func TestLedgerSequencingAndTotals(t *testing.T) {
	l := NewLedger(0)
	if seq := l.Record(LedgerAttempt{Outcome: LedgerApplied, PredictedGain: 2, RealizedGain: 1.5}); seq != 1 {
		t.Fatalf("first seq = %d, want 1", seq)
	}
	if seq := l.Record(LedgerAttempt{Outcome: LedgerRejected, Reason: "delay"}); seq != 2 {
		t.Fatalf("second seq = %d, want 2", seq)
	}
	l.Record(LedgerAttempt{Outcome: LedgerApplied, PredictedGain: 1, RealizedGain: 0.5})
	l.CountReject("stale")
	l.CountReject("stale")

	s := l.Summary()
	if s.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3 (count-only rejects excluded)", s.Attempts)
	}
	if s.Applied != 2 || len(s.Moves) != 2 {
		t.Errorf("Applied = %d, Moves = %d, want 2/2", s.Applied, len(s.Moves))
	}
	if s.PredictedGain != 3 || s.RealizedGain != 2 {
		t.Errorf("totals predicted %v realized %v, want 3/2", s.PredictedGain, s.RealizedGain)
	}
	if s.Rejected["delay"] != 1 || s.Rejected["stale"] != 2 {
		t.Errorf("Rejected = %v", s.Rejected)
	}
	if len(s.Rejects) != 1 || s.Rejects[0].Reason != "delay" {
		t.Errorf("reject entries = %+v, want one delay entry", s.Rejects)
	}
}

// TestLedgerBoundsKeepTotalsExact pins the retention policy: applied
// entries keep the earliest moves, rejected entries ring-buffer the
// latest, and the exact totals survive both.
func TestLedgerBoundsKeepTotalsExact(t *testing.T) {
	l := NewLedger(3)
	for i := 0; i < 10; i++ {
		l.Record(LedgerAttempt{Outcome: LedgerApplied, PredictedGain: 1, RealizedGain: 2})
	}
	for i := 0; i < 10; i++ {
		l.Record(LedgerAttempt{Outcome: LedgerRejected, Reason: fmt.Sprintf("r%d", i)})
	}
	s := l.Summary()
	if s.Applied != 10 {
		t.Errorf("Applied = %d, want 10", s.Applied)
	}
	if len(s.Moves) != 3 || s.DroppedMoves != 7 {
		t.Errorf("Moves = %d dropped = %d, want 3/7", len(s.Moves), s.DroppedMoves)
	}
	if s.RealizedGain != 20 || s.PredictedGain != 10 {
		t.Errorf("totals %v/%v, want 10/20", s.PredictedGain, s.RealizedGain)
	}
	// The reject ring keeps the newest entries in record order.
	if len(s.Rejects) != 3 || s.DroppedRejects != 7 {
		t.Fatalf("Rejects = %d dropped = %d, want 3/7", len(s.Rejects), s.DroppedRejects)
	}
	for i, want := range []string{"r7", "r8", "r9"} {
		if s.Rejects[i].Reason != want {
			t.Errorf("Rejects[%d].Reason = %q, want %q", i, s.Rejects[i].Reason, want)
		}
	}
	total := 0
	for _, n := range s.Rejected {
		total += n
	}
	if total != 10 {
		t.Errorf("Rejected counts sum to %d, want 10", total)
	}
}

// TestLedgerSeparateRings pins the flood-isolation property: a reject
// flood cannot evict the attribution table.
func TestLedgerSeparateRings(t *testing.T) {
	l := NewLedger(4)
	l.Record(LedgerAttempt{Outcome: LedgerApplied, RealizedGain: 1})
	for i := 0; i < 1000; i++ {
		l.Record(LedgerAttempt{Outcome: LedgerRejected, Reason: "refuted"})
	}
	s := l.Summary()
	if len(s.Moves) != 1 || s.DroppedMoves != 0 {
		t.Fatalf("reject flood evicted applied entries: moves=%d dropped=%d", len(s.Moves), s.DroppedMoves)
	}
}

func TestLedgerByNodeAttribution(t *testing.T) {
	l := NewLedger(0)
	l.Record(LedgerAttempt{
		Outcome: LedgerApplied, RealizedGain: 3,
		Cone: []LedgerNodeDelta{{Node: "a", Delta: 2}, {Node: "b", Delta: 1}},
	})
	l.Record(LedgerAttempt{
		Outcome: LedgerApplied, RealizedGain: 1,
		Cone: []LedgerNodeDelta{{Node: "b", Delta: 4}, {Node: "c", Delta: -3}},
	})
	s := l.Summary()
	if len(s.ByNode) != 3 {
		t.Fatalf("ByNode = %+v, want 3 nodes", s.ByNode)
	}
	// Sorted by realized gain descending: b(5), a(2), c(-3).
	want := []LedgerNodeAttribution{
		{Node: "b", Moves: 2, Realized: 5},
		{Node: "a", Moves: 1, Realized: 2},
		{Node: "c", Moves: 1, Realized: -3},
	}
	for i, w := range want {
		if s.ByNode[i] != w {
			t.Errorf("ByNode[%d] = %+v, want %+v", i, s.ByNode[i], w)
		}
	}
	// Node table decomposes the same total as the moves.
	var nodeSum float64
	for _, a := range s.ByNode {
		nodeSum += a.Realized
	}
	if math.Abs(nodeSum-s.RealizedGain) > 1e-12 {
		t.Errorf("node attribution sums to %v, realized %v", nodeSum, s.RealizedGain)
	}
}

func TestLedgerBriefStripsEntries(t *testing.T) {
	l := NewLedger(0)
	l.Record(LedgerAttempt{Outcome: LedgerApplied, RealizedGain: 1,
		Cone: []LedgerNodeDelta{{Node: "a", Delta: 1}}})
	b := l.Summary().Brief()
	if b.Moves != nil || b.Rejects != nil || b.ByNode != nil {
		t.Errorf("Brief kept entry slices: %+v", b)
	}
	if b.Applied != 1 || b.RealizedGain != 1 {
		t.Errorf("Brief lost totals: %+v", b)
	}
}

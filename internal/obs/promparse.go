package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is a deliberately small parser for the Prometheus text
// exposition format (0.0.4), kept in-repo so CI can validate the
// /metrics endpoint without external dependencies. It covers the subset
// the encoder emits: # HELP/# TYPE comments, samples with an optional
// one-level label set, and no timestamps.

// PromSample is one parsed sample line.
type PromSample struct {
	// Name is the sample's metric name (including any _bucket/_sum/_count
	// suffix for histogram series).
	Name string
	// Labels holds the label pairs, unescaped.
	Labels map[string]string
	// Value is the parsed sample value.
	Value float64
}

// PromMetrics is the parse result: declared family types plus every
// sample in input order.
type PromMetrics struct {
	// Types maps family name -> declared type ("counter", "gauge",
	// "histogram", ...).
	Types map[string]string
	// Samples lists every sample line.
	Samples []PromSample
}

// Family returns the samples whose name is the family name or a
// _bucket/_sum/_count series of it.
func (m *PromMetrics) Family(name string) []PromSample {
	var out []PromSample
	for _, s := range m.Samples {
		if s.Name == name || s.Name == name+"_bucket" || s.Name == name+"_sum" || s.Name == name+"_count" {
			out = append(out, s)
		}
	}
	return out
}

// Value returns the value of the first sample with the given name (and
// no label requirement); ok reports whether one exists.
func (m *PromMetrics) Value(name string) (v float64, ok bool) {
	for _, s := range m.Samples {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

// ParsePrometheus parses text exposition input, validating the line
// grammar: comments, blank lines, and `name[{labels}] value` samples.
func ParsePrometheus(r io.Reader) (*PromMetrics, error) {
	m := &PromMetrics{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, m); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		m.Samples = append(m.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// parseComment handles # HELP / # TYPE lines (other comments are
// ignored, per the format).
func parseComment(line string, m *PromMetrics) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		name, typ := fields[2], fields[3]
		if !validMetricName(name) {
			return fmt.Errorf("bad metric name %q in TYPE comment", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if prev, dup := m.Types[name]; dup && prev != typ {
			return fmt.Errorf("conflicting TYPE for %s: %s vs %s", name, prev, typ)
		}
		m.Types[name] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
	}
	return nil
}

func parseSample(line string) (PromSample, error) {
	s := PromSample{}
	rest := line
	brace := strings.IndexByte(rest, '{')
	var valueText string
	if brace >= 0 {
		s.Name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[brace+1 : end])
		if err != nil {
			return s, fmt.Errorf("%v in %q", err, line)
		}
		s.Labels = labels
		valueText = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return s, fmt.Errorf("want `name value`, got %q", line)
		}
		s.Name, valueText = fields[0], fields[1]
	}
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	v, err := parseValue(valueText)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", valueText, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(text string) (float64, error) {
	switch text {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(text, 64)
}

func parseLabels(body string) (map[string]string, error) {
	labels := make(map[string]string)
	body = strings.TrimSuffix(strings.TrimSpace(body), ",")
	if body == "" {
		return labels, nil
	}
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label pair without '='")
		}
		name := strings.TrimSpace(body[:eq])
		if !validLabelName(name) {
			return nil, fmt.Errorf("bad label name %q", name)
		}
		rest := body[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("label value of %q is not quoted", name)
		}
		value, remaining, err := unquoteLabelValue(rest)
		if err != nil {
			return nil, err
		}
		labels[name] = value
		body = strings.TrimPrefix(strings.TrimSpace(remaining), ",")
		body = strings.TrimSpace(body)
	}
	return labels, nil
}

// unquoteLabelValue consumes a leading quoted string with \", \\ and \n
// escapes, returning the value and the unconsumed remainder.
func unquoteLabelValue(s string) (value, rest string, err error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape in label value")
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// ValidatePrometheus parses the input and additionally checks histogram
// invariants for every family declared `histogram`: buckets present and
// sorted by ascending le, cumulative counts non-decreasing, a +Inf
// bucket whose count equals the _count sample. It returns the parsed
// metrics on success.
func ValidatePrometheus(r io.Reader) (*PromMetrics, error) {
	m, err := ParsePrometheus(r)
	if err != nil {
		return nil, err
	}
	for name, typ := range m.Types {
		if typ != "histogram" {
			continue
		}
		if err := validateHistogram(m, name); err != nil {
			return nil, fmt.Errorf("histogram %s: %v", name, err)
		}
	}
	return m, nil
}

func validateHistogram(m *PromMetrics, name string) error {
	// A family may carry several labeled series (one per label set, e.g.
	// http_request_seconds{path,code}); the histogram invariants hold per
	// series, so buckets/_sum/_count are grouped by their non-le label
	// signature before checking.
	type bucket struct {
		le    float64
		count float64
	}
	type series struct {
		buckets            []bucket
		count              float64
		haveCount, haveSum bool
	}
	groups := make(map[string]*series)
	get := func(s PromSample) *series {
		keys := make([]string, 0, len(s.Labels))
		for k := range s.Labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var sig strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&sig, "%s=%q,", k, s.Labels[k])
		}
		g := groups[sig.String()]
		if g == nil {
			g = &series{}
			groups[sig.String()] = g
		}
		return g
	}
	for _, s := range m.Samples {
		switch s.Name {
		case name + "_bucket":
			leText, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("bucket sample without le label")
			}
			le, err := parseValue(leText)
			if err != nil {
				return fmt.Errorf("bad le %q: %v", leText, err)
			}
			g := get(s)
			g.buckets = append(g.buckets, bucket{le: le, count: s.Value})
		case name + "_count":
			g := get(s)
			g.count, g.haveCount = s.Value, true
		case name + "_sum":
			get(s).haveSum = true
		}
	}
	if len(groups) == 0 {
		return fmt.Errorf("no buckets")
	}
	check := func(g *series) error {
		if len(g.buckets) == 0 {
			return fmt.Errorf("no buckets")
		}
		if !g.haveCount || !g.haveSum {
			return fmt.Errorf("missing _count or _sum")
		}
		if !sort.SliceIsSorted(g.buckets, func(i, j int) bool { return g.buckets[i].le < g.buckets[j].le }) {
			return fmt.Errorf("bucket le values not ascending")
		}
		for i := 1; i < len(g.buckets); i++ {
			if g.buckets[i].count < g.buckets[i-1].count {
				return fmt.Errorf("cumulative counts decrease at le=%v", g.buckets[i].le)
			}
		}
		last := g.buckets[len(g.buckets)-1]
		if !math.IsInf(last.le, 1) {
			return fmt.Errorf("missing +Inf bucket")
		}
		if last.count != g.count {
			return fmt.Errorf("+Inf bucket %v != count %v", last.count, g.count)
		}
		return nil
	}
	for sig, g := range groups {
		if err := check(g); err != nil {
			if sig != "" {
				return fmt.Errorf("series {%s}: %v", strings.TrimSuffix(sig, ","), err)
			}
			return err
		}
	}
	return nil
}

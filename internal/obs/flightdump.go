//go:build !windows

package obs

import (
	"os"
	"os/signal"
	"syscall"
)

// FlightDumpOnQuit installs a SIGQUIT handler that writes the process
// flight recorder to stderr — after folding the counter movement of reg
// (which may be nil) into the ring — then restores the signal's default
// disposition and re-raises it, so the Go runtime's goroutine dump and
// exit still happen. The postmortem reads as: last recorded moments
// first, stack dump second. Call once from main.
func FlightDumpOnQuit(reg *Registry) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		<-ch
		flight.SampleMetrics(reg)
		flight.WriteText(os.Stderr)
		signal.Reset(syscall.SIGQUIT)
		_ = syscall.Kill(syscall.Getpid(), syscall.SIGQUIT)
	}()
}

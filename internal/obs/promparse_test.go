package obs

import (
	"math"
	"strings"
	"testing"
)

func TestParsePrometheusSamples(t *testing.T) {
	in := `# HELP x_total helpful words
# TYPE x_total counter
x_total 42
# TYPE lat histogram
lat_bucket{le="0.5"} 1
lat_bucket{le="+Inf"} 2
lat_sum 1.25
lat_count 2
g{a="b",c="d\"e\\f\ng"} -3.5
`
	m, err := ParsePrometheus(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Types["x_total"] != "counter" || m.Types["lat"] != "histogram" {
		t.Errorf("Types = %v", m.Types)
	}
	if v, ok := m.Value("x_total"); !ok || v != 42 {
		t.Errorf("x_total = %v ok=%v", v, ok)
	}
	var g *PromSample
	for i := range m.Samples {
		if m.Samples[i].Name == "g" {
			g = &m.Samples[i]
		}
	}
	if g == nil {
		t.Fatal("sample g not parsed")
	}
	if g.Value != -3.5 || g.Labels["a"] != "b" || g.Labels["c"] != "d\"e\\f\ng" {
		t.Errorf("g = %+v", g)
	}
	// +Inf label value must parse to infinity via the le accessor path.
	var inf *PromSample
	for i := range m.Samples {
		if m.Samples[i].Name == "lat_bucket" && m.Samples[i].Labels["le"] == "+Inf" {
			inf = &m.Samples[i]
		}
	}
	if inf == nil || inf.Value != 2 {
		t.Errorf("+Inf bucket = %+v", inf)
	}
	if fam := m.Family("lat"); len(fam) != 4 {
		t.Errorf("Family(lat) = %d samples, want 4", len(fam))
	}
}

func TestParsePrometheusSpecialValues(t *testing.T) {
	in := "a +Inf\nb -Inf\nc NaN\n"
	m, err := ParsePrometheus(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Value("a"); !math.IsInf(v, 1) {
		t.Errorf("a = %v", v)
	}
	if v, _ := m.Value("b"); !math.IsInf(v, -1) {
		t.Errorf("b = %v", v)
	}
	if v, _ := m.Value("c"); !math.IsNaN(v) {
		t.Errorf("c = %v", v)
	}
}

func TestParsePrometheusRejectsMalformed(t *testing.T) {
	bad := []string{
		"1badname 1\n",
		"x\n",
		"x one\n",
		`x{le="0.5" 1` + "\n",
		`x{le=0.5} 1` + "\n",
		`x{le="unterminated} 1`,
		"# TYPE x wrongtype\nx 1\n",
		"# TYPE x counter\n# TYPE x gauge\n",
		`x{9bad="v"} 1` + "\n",
		`x{a="\q"} 1` + "\n",
	}
	for _, in := range bad {
		if _, err := ParsePrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("accepted malformed input %q", in)
		}
	}
}

func TestValidatePrometheusHistogramInvariants(t *testing.T) {
	valid := `# TYPE h histogram
h_bucket{le="1"} 1
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 4
h_sum 5.5
h_count 4
`
	if _, err := ValidatePrometheus(strings.NewReader(valid)); err != nil {
		t.Errorf("valid histogram rejected: %v", err)
	}

	bad := map[string]string{
		"no buckets": `# TYPE h histogram
h_sum 0
h_count 0
`,
		"descending le": `# TYPE h histogram
h_bucket{le="2"} 1
h_bucket{le="1"} 1
h_bucket{le="+Inf"} 1
h_sum 0
h_count 1
`,
		"non-monotone counts": `# TYPE h histogram
h_bucket{le="1"} 3
h_bucket{le="2"} 2
h_bucket{le="+Inf"} 3
h_sum 0
h_count 3
`,
		"missing +Inf": `# TYPE h histogram
h_bucket{le="1"} 1
h_sum 0
h_count 1
`,
		"+Inf != count": `# TYPE h histogram
h_bucket{le="1"} 1
h_bucket{le="+Inf"} 1
h_sum 0
h_count 2
`,
		"missing sum": `# TYPE h histogram
h_bucket{le="+Inf"} 1
h_count 1
`,
		"bucket without le": `# TYPE h histogram
h_bucket{x="1"} 1
h_bucket{le="+Inf"} 1
h_sum 0
h_count 1
`,
	}
	for name, in := range bad {
		if _, err := ValidatePrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted invalid histogram", name)
		}
	}
}

package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestLabeledCanonicalKey(t *testing.T) {
	cases := []struct {
		name string
		kv   []string
		want string
	}{
		{"plain", nil, "plain"},
		{"m", []string{"path", "/v1/jobs", "code", "200"}, `m{code="200",path="/v1/jobs"}`},
		{"m", []string{"code", "200", "path", "/v1/jobs"}, `m{code="200",path="/v1/jobs"}`},
		{"m", []string{"k", `a"b\c`}, `m{k="a\"b\\c"}`},
		{"m", []string{"k", "a\nb"}, `m{k="a\nb"}`},
		{"m", []string{"k", "v", "dangling"}, `m{k="v"}`},
	}
	for _, c := range cases {
		if got := Labeled(c.name, c.kv...); got != c.want {
			t.Errorf("Labeled(%q, %v) = %q, want %q", c.name, c.kv, got, c.want)
		}
	}
}

func TestSplitLabels(t *testing.T) {
	base, labels := splitLabels(`http.request.seconds{code="200",path="/v1/jobs"}`)
	if base != "http.request.seconds" || labels != `code="200",path="/v1/jobs"` {
		t.Errorf("splitLabels = (%q, %q)", base, labels)
	}
	base, labels = splitLabels("plain")
	if base != "plain" || labels != "" {
		t.Errorf("splitLabels(plain) = (%q, %q)", base, labels)
	}
}

func TestLabeledCountersExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(Labeled("par.conflicts", "kind", "touched")).Add(3)
	reg.Counter(Labeled("par.conflicts", "kind", "shared")).Add(2)
	reg.Counter("par.conflicts").Inc() // unlabeled sibling of the family

	var buf bytes.Buffer
	reg.WritePrometheus(&buf, "powder_")
	out := buf.String()

	if n := strings.Count(out, "# TYPE powder_par_conflicts_total counter"); n != 1 {
		t.Fatalf("family TYPE line appears %d times, want 1:\n%s", n, out)
	}
	for _, line := range []string{
		`powder_par_conflicts_total 1`,
		`powder_par_conflicts_total{kind="shared"} 2`,
		`powder_par_conflicts_total{kind="touched"} 3`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
	if _, err := ValidatePrometheus(strings.NewReader(out)); err != nil {
		t.Errorf("labeled counter exposition does not validate: %v", err)
	}
}

func TestLabeledHistogramsExposition(t *testing.T) {
	reg := NewRegistry()
	for _, v := range []float64{0.01, 0.02, 0.5} {
		reg.Histogram(Labeled("http.request.seconds", "path", "/v1/jobs", "code", "202")).Observe(v)
	}
	reg.Histogram(Labeled("http.request.seconds", "path", "/healthz", "code", "200")).Observe(0.001)

	var buf bytes.Buffer
	reg.WritePrometheus(&buf, "powder_")
	out := buf.String()

	if n := strings.Count(out, "# TYPE powder_http_request_seconds histogram"); n != 1 {
		t.Fatalf("family TYPE line appears %d times, want 1:\n%s", n, out)
	}
	// Bucket lines merge the series labels ahead of le; sum/count carry
	// the series labels alone.
	for _, frag := range []string{
		`powder_http_request_seconds_bucket{code="202",path="/v1/jobs",le="+Inf"} 3`,
		`powder_http_request_seconds_count{code="202",path="/v1/jobs"} 3`,
		`powder_http_request_seconds_count{code="200",path="/healthz"} 1`,
	} {
		if !strings.Contains(out, frag+"\n") {
			t.Errorf("exposition missing %q:\n%s", frag, out)
		}
	}
	// The in-repo validator must accept a multi-series histogram family
	// (buckets grouped per label signature, each cumulative).
	if _, err := ValidatePrometheus(strings.NewReader(out)); err != nil {
		t.Errorf("multi-series histogram exposition does not validate: %v", err)
	}
}

package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// perfettoEvent is one Chrome trace-event ("X" = complete event with a
// duration, "M" = metadata). The format is what chrome://tracing and
// ui.perfetto.dev load directly.
type perfettoEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`            // microseconds
	Dur  int64          `json:"dur,omitempty"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// perfettoFile is the JSON-object flavour of the trace-event format.
type perfettoFile struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// WritePerfetto renders spans (from one or several traces) as
// Chrome/Perfetto trace-event JSON. Each (trace, track) pair gets its
// own tid — named "trace" for the default lane and "trace/track" for
// named lanes (per-worker timelines of a parallel run) — so concurrent
// jobs and concurrent workers within a job both appear as parallel
// rows; spans nest on a row by time containment, which the recorder's
// parent links guarantee. Timestamps are microseconds relative to the
// earliest span, keeping the JSON stable under re-export.
func WritePerfetto(w io.Writer, spans []Record) error {
	ordered := append([]Record(nil), spans...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Trace != ordered[j].Trace {
			return ordered[i].Trace < ordered[j].Trace
		}
		return ordered[i].ID < ordered[j].ID
	})

	var epoch time.Time
	for _, s := range ordered {
		if epoch.IsZero() || s.Start.Before(epoch) {
			epoch = s.Start
		}
	}

	type lane struct{ trace, track string }
	tids := make(map[lane]int)
	file := perfettoFile{DisplayTimeUnit: "ms", TraceEvents: []perfettoEvent{}}
	for _, s := range ordered {
		key := lane{s.Trace, s.Track}
		tid, ok := tids[key]
		if !ok {
			tid = len(tids) + 1
			tids[key] = tid
			name := s.Trace
			if s.Track != "" {
				name = s.Trace + "/" + s.Track
			}
			file.TraceEvents = append(file.TraceEvents, perfettoEvent{
				Name: "thread_name",
				Ph:   "M",
				Pid:  1,
				Tid:  tid,
				Args: map[string]any{"name": name},
			})
		}
		ev := perfettoEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   s.Start.Sub(epoch).Microseconds(),
			Dur:  s.End.Sub(s.Start).Microseconds(),
			Pid:  1,
			Tid:  tid,
			Cat:  "powder",
		}
		if len(s.Attrs) > 0 || s.Parent != 0 {
			ev.Args = make(map[string]any, len(s.Attrs)+2)
			for k, v := range s.Attrs {
				ev.Args[k] = v
			}
			ev.Args["span"] = int64(s.ID)
			if s.Parent != 0 {
				ev.Args["parent"] = int64(s.Parent)
			}
		} else {
			ev.Args = map[string]any{"span": int64(s.ID)}
		}
		file.TraceEvents = append(file.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(file)
}

// Validate checks a completed trace for well-formedness: every span
// ended (End after Start), every non-zero parent exists, children
// nested within their parent's interval, and no span ID repeated. It
// returns nil for an empty trace and the first violation otherwise.
// The service's trace endpoint and the CI smoke use it to certify the
// span tree a job publishes.
func Validate(spans []Record) error {
	byID := make(map[SpanID]Record, len(spans))
	for _, s := range spans {
		if s.ID == 0 {
			return fmt.Errorf("trace: span %q has ID 0", s.Name)
		}
		if _, dup := byID[s.ID]; dup {
			return fmt.Errorf("trace: duplicate span ID %d (%q)", s.ID, s.Name)
		}
		byID[s.ID] = s
	}
	for _, s := range spans {
		if s.End.IsZero() {
			return fmt.Errorf("trace: span %d (%q) never ended", s.ID, s.Name)
		}
		if s.End.Before(s.Start) {
			return fmt.Errorf("trace: span %d (%q) ends %v before it starts", s.ID, s.Name, s.Start.Sub(s.End))
		}
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			// The recorder overwrites oldest-ended spans, and a parent
			// always ends after its children, so a complete trace keeps
			// parent closure under any drop pattern; a missing parent is
			// a genuine defect.
			return fmt.Errorf("trace: span %d (%q) references unknown parent %d", s.ID, s.Name, s.Parent)
		}
		if s.Start.Before(p.Start) || s.End.After(p.End) {
			return fmt.Errorf("trace: span %d (%q) [%v..%v] escapes parent %d (%q) [%v..%v]",
				s.ID, s.Name, s.Start, s.End, p.ID, p.Name, p.Start, p.End)
		}
	}
	return nil
}

// Roots returns the root spans (Parent == 0) of a snapshot.
func Roots(spans []Record) []Record {
	var roots []Record
	for _, s := range spans {
		if s.Parent == 0 {
			roots = append(roots, s)
		}
	}
	return roots
}

package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// fixedTrackSpans is a two-trace forest with worker tracks built from
// constants: trace "job-1" is a parallel round (two region workers plus
// the master commit lane under a shared round span), trace "client-9"
// is a foreign client span with an ID from the disjoint client space.
func fixedTrackSpans() []Record {
	t0 := time.Unix(200, 0)
	return []Record{
		{Trace: "job-1", ID: 1, Name: "optimize", Start: t0, End: t0.Add(20 * time.Millisecond)},
		{Trace: "job-1", ID: 2, Parent: 1, Name: "round", Start: t0, End: t0.Add(18 * time.Millisecond),
			Attrs: map[string]any{"round": 1}},
		{Trace: "job-1", ID: 3, Parent: 2, Name: "region", Track: "worker-1",
			Start: t0.Add(time.Millisecond), End: t0.Add(8 * time.Millisecond)},
		{Trace: "job-1", ID: 4, Parent: 3, Name: "prove", Track: "worker-1",
			Start: t0.Add(2 * time.Millisecond), End: t0.Add(6 * time.Millisecond)},
		{Trace: "job-1", ID: 5, Parent: 2, Name: "region", Track: "worker-2",
			Start: t0.Add(time.Millisecond), End: t0.Add(9 * time.Millisecond)},
		{Trace: "job-1", ID: 6, Parent: 2, Name: "commit", Track: "master",
			Start: t0.Add(10 * time.Millisecond), End: t0.Add(17 * time.Millisecond)},
		{Trace: "client-9", ID: 1<<32 + 1, Name: "client",
			Start: t0.Add(-time.Millisecond), End: t0.Add(25 * time.Millisecond)},
	}
}

const goldenTrackPerfetto = `{
 "traceEvents": [
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 1,
   "args": {
    "name": "client-9"
   }
  },
  {
   "name": "client",
   "ph": "X",
   "ts": 0,
   "dur": 26000,
   "pid": 1,
   "tid": 1,
   "cat": "powder",
   "args": {
    "span": 4294967297
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 2,
   "args": {
    "name": "job-1"
   }
  },
  {
   "name": "optimize",
   "ph": "X",
   "ts": 1000,
   "dur": 20000,
   "pid": 1,
   "tid": 2,
   "cat": "powder",
   "args": {
    "span": 1
   }
  },
  {
   "name": "round",
   "ph": "X",
   "ts": 1000,
   "dur": 18000,
   "pid": 1,
   "tid": 2,
   "cat": "powder",
   "args": {
    "parent": 1,
    "round": 1,
    "span": 2
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 3,
   "args": {
    "name": "job-1/worker-1"
   }
  },
  {
   "name": "region",
   "ph": "X",
   "ts": 2000,
   "dur": 7000,
   "pid": 1,
   "tid": 3,
   "cat": "powder",
   "args": {
    "parent": 2,
    "span": 3
   }
  },
  {
   "name": "prove",
   "ph": "X",
   "ts": 3000,
   "dur": 4000,
   "pid": 1,
   "tid": 3,
   "cat": "powder",
   "args": {
    "parent": 3,
    "span": 4
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 4,
   "args": {
    "name": "job-1/worker-2"
   }
  },
  {
   "name": "region",
   "ph": "X",
   "ts": 2000,
   "dur": 8000,
   "pid": 1,
   "tid": 4,
   "cat": "powder",
   "args": {
    "parent": 2,
    "span": 5
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 5,
   "args": {
    "name": "job-1/master"
   }
  },
  {
   "name": "commit",
   "ph": "X",
   "ts": 11000,
   "dur": 7000,
   "pid": 1,
   "tid": 5,
   "cat": "powder",
   "args": {
    "parent": 2,
    "span": 6
   }
  }
 ],
 "displayTimeUnit": "ms"
}
`

func TestWritePerfettoTrackGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, fixedTrackSpans()); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	if got := buf.String(); got != goldenTrackPerfetto {
		t.Errorf("Perfetto track output drifted from golden.\ngot:\n%s\nwant:\n%s", got, goldenTrackPerfetto)
	}
}

func TestWritePerfettoTrackLanes(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, fixedTrackSpans()); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// Lane names: the default lane is the bare trace name, a worker lane
	// is "trace/track"; each gets exactly one tid.
	laneTid := map[string]int{}
	spanLanes := map[string]int{}
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "M":
			name := ev.Args["name"].(string)
			if prev, dup := laneTid[name]; dup {
				t.Errorf("lane %q announced twice (tid %d and %d)", name, prev, ev.Tid)
			}
			laneTid[name] = ev.Tid
		case "X":
			spanLanes[ev.Name] = ev.Tid
		}
	}
	wantLanes := []string{"client-9", "job-1", "job-1/worker-1", "job-1/worker-2", "job-1/master"}
	if len(laneTid) != len(wantLanes) {
		t.Fatalf("got %d lanes %v, want %d", len(laneTid), laneTid, len(wantLanes))
	}
	for _, lane := range wantLanes {
		if _, ok := laneTid[lane]; !ok {
			t.Errorf("missing lane %q (have %v)", lane, laneTid)
		}
	}
	if spanLanes["prove"] != laneTid["job-1/worker-1"] {
		t.Errorf("prove on tid %d, want its worker lane %d", spanLanes["prove"], laneTid["job-1/worker-1"])
	}
	if spanLanes["commit"] != laneTid["job-1/master"] {
		t.Errorf("commit on tid %d, want the master lane %d", spanLanes["commit"], laneTid["job-1/master"])
	}
	if spanLanes["optimize"] != laneTid["job-1"] {
		t.Errorf("optimize on tid %d, want the default lane %d", spanLanes["optimize"], laneTid["job-1"])
	}
}

// TestWritePerfettoAfterDrops floods a bounded recorder with tracked
// leaf spans and checks the surviving forest still validates and
// exports: the ring overwrites oldest-ended leaves but keeps parents,
// so the export never references a lane or parent that was dropped.
func TestWritePerfettoAfterDrops(t *testing.T) {
	tr := New("drops", Options{Limit: 6})
	root := tr.Start("round", 0)
	for i := 0; i < 25; i++ {
		w := tr.Start("region", root.ID())
		w.SetTrack("worker-1")
		c := tr.Start("prove", w.ID())
		c.End()
		w.End()
	}
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 6 {
		t.Fatalf("ring kept %d spans, want 6", len(spans))
	}
	if tr.Dropped() == 0 {
		t.Fatal("expected drops")
	}
	if err := Validate(spans); err != nil {
		t.Fatalf("Validate after drops: %v", err)
	}
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, spans); err != nil {
		t.Fatalf("WritePerfetto after drops: %v", err)
	}
	var file map[string]any
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export after drops is not valid JSON: %v", err)
	}
}

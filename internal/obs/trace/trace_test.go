package trace

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"powder/internal/obs"
)

func TestSpanIDsDeterministic(t *testing.T) {
	for run := 0; run < 2; run++ {
		tr := New("det", Options{})
		root := tr.Start("root", 0)
		a := tr.Start("a", root.ID())
		b := tr.Start("b", root.ID())
		b.End()
		a.End()
		root.End()
		spans := tr.Snapshot()
		if len(spans) != 3 {
			t.Fatalf("run %d: got %d spans, want 3", run, len(spans))
		}
		for i, want := range []SpanID{1, 2, 3} {
			if spans[i].ID != want {
				t.Errorf("run %d: span %d has ID %d, want %d", run, i, spans[i].ID, want)
			}
		}
		if spans[1].Parent != 1 || spans[2].Parent != 1 {
			t.Errorf("run %d: children parents = %d,%d, want 1,1", run, spans[1].Parent, spans[2].Parent)
		}
	}
}

func TestContextNesting(t *testing.T) {
	tr := New("nest", Options{})
	ctx := NewContext(context.Background(), tr)
	ctx, root := StartSpan(ctx, "root")
	cctx, child := StartSpan(ctx, "child")
	_, grand := StartSpan(cctx, "grandchild")
	grand.End()
	child.End()
	// A sibling started from the root context still parents to root.
	_, sib := StartSpan(ctx, "sibling")
	sib.End()
	root.End()

	spans := tr.Snapshot()
	if err := Validate(spans); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	parents := map[string]SpanID{}
	ids := map[string]SpanID{}
	for _, s := range spans {
		parents[s.Name] = s.Parent
		ids[s.Name] = s.ID
	}
	if parents["root"] != 0 {
		t.Errorf("root parent = %d, want 0", parents["root"])
	}
	if parents["child"] != ids["root"] || parents["sibling"] != ids["root"] {
		t.Errorf("child/sibling parents = %d/%d, want %d", parents["child"], parents["sibling"], ids["root"])
	}
	if parents["grandchild"] != ids["child"] {
		t.Errorf("grandchild parent = %d, want %d", parents["grandchild"], ids["child"])
	}
	if got := len(Roots(spans)); got != 1 {
		t.Errorf("Roots = %d, want 1", got)
	}
}

func TestNilSafety(t *testing.T) {
	// Every operation must be a no-op without a tracer, a span, or even
	// a context — the instrumented hot paths rely on it.
	var tr *Tracer
	if s := tr.Start("x", 0); s != nil {
		t.Fatalf("nil tracer Start = %v, want nil", s)
	}
	if tr.Snapshot() != nil || tr.ActiveStack() != nil || tr.Dropped() != 0 || tr.ID() != "" {
		t.Fatal("nil tracer accessors not zero")
	}
	var sp *Span
	sp.SetAttr("k", 1)
	sp.End()
	if sp.ID() != 0 {
		t.Fatal("nil span ID != 0")
	}
	ctx, sp2 := StartSpan(context.Background(), "noop")
	if sp2 != nil || ctx == nil {
		t.Fatal("StartSpan without tracer should return (ctx, nil)")
	}
	if FromContext(nil) != nil || SpanFromContext(nil) != nil {
		t.Fatal("nil context lookups should return nil")
	}
	if id, sid := IDs(context.Background()); id != "" || sid != 0 {
		t.Fatal("IDs without tracer should be zero")
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := New("idem", Options{})
	s := tr.Start("once", 0)
	s.End()
	s.End()
	if got := len(tr.Snapshot()); got != 1 {
		t.Fatalf("double End recorded %d spans, want 1", got)
	}
}

func TestRingOverwritesOldestAndKeepsParents(t *testing.T) {
	ctr := obs.NewRegistry().Counter("drops")
	tr := New("ring", Options{Limit: 8, DropCounter: ctr})
	root := tr.Start("root", 0)
	// 20 leaf children flood the 8-slot ring; the oldest-ended leaves
	// are overwritten, the newest survive, and root (ending last) must
	// always be retained.
	for i := 0; i < 20; i++ {
		c := tr.Start("leaf", root.ID())
		c.SetAttr("i", i)
		c.End()
	}
	root.End()
	spans := tr.Snapshot()
	if len(spans) != 8 {
		t.Fatalf("ring kept %d spans, want 8", len(spans))
	}
	if err := Validate(spans); err != nil {
		t.Fatalf("Validate after drops: %v", err)
	}
	foundRoot := false
	for _, s := range spans {
		if s.Name == "root" {
			foundRoot = true
		}
	}
	if !foundRoot {
		t.Fatal("root span was dropped; the recorder must overwrite oldest-ended spans")
	}
	wantDropped := int64(20 + 1 - 8)
	if tr.Dropped() != wantDropped {
		t.Errorf("Dropped = %d, want %d", tr.Dropped(), wantDropped)
	}
	if ctr.Value() != wantDropped {
		t.Errorf("drop counter = %d, want %d", ctr.Value(), wantDropped)
	}
}

func TestActiveStack(t *testing.T) {
	tr := New("live", Options{})
	ctx := NewContext(context.Background(), tr)
	ctx, root := StartSpan(ctx, "root")
	ctx, mid := StartSpan(ctx, "mid")
	_, leaf := StartSpan(ctx, "leaf")

	stack := tr.ActiveStack()
	if len(stack) != 3 {
		t.Fatalf("active stack has %d spans, want 3", len(stack))
	}
	for i, want := range []string{"root", "mid", "leaf"} {
		if stack[i].Name != want {
			t.Errorf("stack[%d] = %q, want %q", i, stack[i].Name, want)
		}
		if !stack[i].End.IsZero() {
			t.Errorf("stack[%d] has non-zero End", i)
		}
	}
	leaf.End()
	mid.End()
	root.End()
	if got := len(tr.ActiveStack()); got != 0 {
		t.Fatalf("active stack has %d spans after all ended, want 0", got)
	}
}

func TestSpansMirrorToObserver(t *testing.T) {
	hub := obs.NewHub(0)
	tr := New("mirror", Options{Obs: obs.New(hub, nil)})
	s := tr.Start("work", 0)
	s.SetAttr("n", 7)
	s.End()
	hub.Close()
	evs := hub.Events()
	if len(evs) != 1 || evs[0].Name != "span" {
		t.Fatalf("hub events = %v, want one span event", evs)
	}
	f := evs[0].Fields
	if f["trace"] != "mirror" || f["name"] != "work" || f["attr_n"] != 7 {
		t.Fatalf("span event fields = %v", f)
	}
}

func TestSamplerEvery(t *testing.T) {
	if Every(0) != nil || Every(-3) != nil {
		t.Fatal("Every(<=0) should be a nil sampler")
	}
	var nilS *Sampler
	if nilS.Sample() {
		t.Fatal("nil sampler sampled")
	}
	s := Every(3)
	var got []bool
	for i := 0; i < 7; i++ {
		got = append(got, s.Sample())
	}
	want := []bool{true, false, false, true, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sample()[%d] = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
	all := Every(1)
	for i := 0; i < 3; i++ {
		if !all.Sample() {
			t.Fatal("Every(1) must sample everything")
		}
	}
}

func TestValidateRejectsMalformedTrees(t *testing.T) {
	t0 := time.Unix(1000, 0)
	ok := []Record{
		{Trace: "t", ID: 1, Name: "root", Start: t0, End: t0.Add(10 * time.Millisecond)},
		{Trace: "t", ID: 2, Parent: 1, Name: "child", Start: t0.Add(time.Millisecond), End: t0.Add(2 * time.Millisecond)},
	}
	if err := Validate(ok); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if err := Validate(nil); err != nil {
		t.Fatalf("empty trace rejected: %v", err)
	}
	cases := []struct {
		name  string
		spans []Record
	}{
		{"zero id", []Record{{Trace: "t", ID: 0, Name: "x", Start: t0, End: t0}}},
		{"duplicate id", []Record{
			{Trace: "t", ID: 1, Name: "a", Start: t0, End: t0},
			{Trace: "t", ID: 1, Name: "b", Start: t0, End: t0},
		}},
		{"never ended", []Record{{Trace: "t", ID: 1, Name: "open", Start: t0}}},
		{"ends before start", []Record{{Trace: "t", ID: 1, Name: "x", Start: t0, End: t0.Add(-time.Second)}}},
		{"unknown parent", []Record{{Trace: "t", ID: 2, Parent: 9, Name: "orphan", Start: t0, End: t0}}},
		{"escapes parent", []Record{
			{Trace: "t", ID: 1, Name: "root", Start: t0, End: t0.Add(time.Millisecond)},
			{Trace: "t", ID: 2, Parent: 1, Name: "late", Start: t0, End: t0.Add(time.Hour)},
		}},
	}
	for _, c := range cases {
		if err := Validate(c.spans); err == nil {
			t.Errorf("%s: Validate accepted a malformed trace", c.name)
		}
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	// Spans start, annotate, and end from many goroutines at once (the
	// service traces parallel workers); IDs must stay unique and the
	// recorder consistent. Run with -race.
	tr := New("conc", Options{Limit: 64})
	ctx := NewContext(context.Background(), tr)
	ctx, root := StartSpan(ctx, "root")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				cctx, s := StartSpan(ctx, fmt.Sprintf("g%d", g))
				s.SetAttr("i", i)
				_, inner := StartSpan(cctx, "inner")
				inner.End()
				s.End()
				if i%50 == 0 {
					_ = tr.ActiveStack()
					_ = tr.Snapshot()
					_ = tr.Dropped()
				}
			}
		}(g)
	}
	wg.Wait()
	root.End()
	spans := tr.Snapshot()
	if len(spans) != 64 {
		t.Fatalf("ring kept %d spans, want 64", len(spans))
	}
	seen := map[SpanID]bool{}
	for _, s := range spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		seen[s.ID] = true
	}
	// 1 root + 8*200*2 children, minus the 64 retained.
	if want := int64(1+8*200*2) - 64; tr.Dropped() != want {
		t.Fatalf("Dropped = %d, want %d", tr.Dropped(), want)
	}
}

// Package trace is POWDER's hierarchical span tracer: a low-overhead
// recorder of named, attributed, parent-linked time intervals that shows
// where wall time goes inside one optimization run — harvest vs. prove
// vs. apply, per candidate, per SAT solve — and which request produced
// which work once jobs fan out across a worker pool.
//
// A Tracer owns one trace: a tree (or forest) of spans whose IDs come
// from a per-trace atomic counter, so two runs of the same workload
// produce the same IDs and tests never need wall-clock ordering. The
// tracer rides a context.Context: StartSpan reads the tracer and the
// current span off the context, allocates a child span, and returns a
// derived context carrying the new span, so instrumented layers (core,
// sat, seq, service) need no plumbing beyond passing ctx along.
//
// Everything is nil-safe in the obs tradition: a nil *Tracer, a context
// without a tracer, or a nil *Span make every operation a cheap no-op,
// so instrumented hot paths pay one context lookup when tracing is off.
//
// Completed spans land in a bounded ring recorder: once full, the
// oldest-ended span is overwritten and counted as dropped. Because a
// parent always ends after its children, keeping the newest-ended spans
// preserves parent closure — every retained span's ancestors (which end
// later) are retained too, so the exported tree stays well-formed and
// the root survives any flood of leaf spans. When an obs sink is
// attached, completed spans are also mirrored as "span" events onto the
// run's event stream. Exporters render the recorded tree as
// Chrome/Perfetto trace-event JSON (see perfetto.go).
package trace

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"powder/internal/obs"
)

// errZeroSpanID rejects adopted records without an ID: a 0 ID means "no
// span" everywhere else in the package and would corrupt parent links.
var errZeroSpanID = errors.New("trace: adopted span has ID 0")

// DefaultLimit is the recorder capacity (completed spans retained) when
// Options does not choose one.
const DefaultLimit = 65536

// SpanID identifies a span within its trace; 0 means "no span" (the
// parent of a root).
type SpanID int64

// Span is one live (or ended) timed interval. Create spans with
// StartSpan or Tracer.Start; a nil *Span is a no-op on every method.
type Span struct {
	tracer *Tracer
	id     SpanID
	parent SpanID
	name   string
	start  time.Time

	mu    sync.Mutex
	track string
	attrs map[string]any
	ended bool
}

// ID returns the span's trace-local identifier (0 on a nil span).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// SetTrack assigns the span to a named timeline lane within its trace.
// Tracks render as separate Perfetto threads ("trace/track"), so
// concurrent workers inside one trace appear as parallel rows instead
// of one overlapping pile. Children started via StartSpan inherit the
// current span's track. An empty track is the trace's default lane.
func (s *Span) SetTrack(track string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.track = track
	s.mu.Unlock()
}

// Track returns the span's timeline lane ("" on a nil or default-lane
// span).
func (s *Span) Track() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.track
}

// SetAttr attaches one key/value attribute to the span. Safe for
// concurrent use and after End (late attributes are kept on the span
// but will not be in the already-recorded snapshot).
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// End closes the span and records it. Idempotent: only the first End
// records; later calls (e.g. a deferred End after an explicit one on
// the happy path) are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	track := s.track
	s.mu.Unlock()
	s.tracer.record(s, track, attrs, time.Now())
}

// Record is the immutable, serializable form of one completed (or, in
// live introspection, still-open) span.
type Record struct {
	// Trace is the owning trace's identifier.
	Trace string `json:"trace"`
	// ID is the span's trace-local ID; Parent is 0 for roots.
	ID     SpanID `json:"id"`
	Parent SpanID `json:"parent,omitempty"`
	// Name is the span label ("optimize", "harvest", "sat-solve", ...).
	Name string `json:"name"`
	// Track is the span's timeline lane within the trace ("" = default).
	// The Perfetto exporter renders each (trace, track) pair as its own
	// thread, so per-worker lanes of one parallel run sit side by side.
	Track string `json:"track,omitempty"`
	// Start and End bound the interval; End is the zero time on a
	// still-open span (live snapshots only).
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Attrs carries the span attributes (nil when none).
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Seconds returns the span duration (0 for an open span).
func (r Record) Seconds() float64 {
	if r.End.IsZero() {
		return 0
	}
	return r.End.Sub(r.Start).Seconds()
}

// Options configures a Tracer.
type Options struct {
	// Limit bounds the completed-span recorder (<= 0: DefaultLimit).
	// Once full, further spans are dropped and counted — never blocking
	// and never unbounding memory, in the AsyncSink tradition.
	Limit int
	// DropCounter, when non-nil, mirrors every dropped span into a
	// metrics registry counter (conventionally "trace.dropped.spans").
	DropCounter *obs.Counter
	// Obs, when non-nil, receives each completed span as a "span" event
	// (trace/span/parent/name/start/seconds + flattened attrs), putting
	// spans on the same NDJSON stream as the run's other events.
	Obs *obs.Observer
	// Base offsets the span-ID counter: the first span gets ID Base+1.
	// Cooperating processes that contribute spans to one stitched trace
	// (client-side request spans adopted by powderd) pick disjoint bases
	// so their IDs never collide without coordination.
	Base int64
}

// Tracer owns one trace. A nil *Tracer is a valid disabled tracer.
type Tracer struct {
	id   string
	next atomic.Int64

	mu     sync.Mutex
	ring   []Record         // completed spans in end order, capacity limit
	head   int              // ring write position once len(ring) == limit
	active map[SpanID]*Span // open spans, for live introspection
	limit  int

	dropped atomic.Int64
	dropCtr *obs.Counter
	obs     *obs.Observer
}

// New returns a tracer for one trace identified by id (powderd uses the
// job ID; the CLI uses the circuit name).
func New(id string, opts Options) *Tracer {
	if opts.Limit <= 0 {
		opts.Limit = DefaultLimit
	}
	t := &Tracer{
		id:      id,
		active:  make(map[SpanID]*Span),
		limit:   opts.Limit,
		dropCtr: opts.DropCounter,
		obs:     opts.Obs,
	}
	if opts.Base > 0 {
		t.next.Store(opts.Base)
	}
	return t
}

// ID returns the trace identifier ("" on a nil tracer).
func (t *Tracer) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start opens a span with an explicit parent (0 for a root). Most
// callers should use StartSpan, which manages the parent through the
// context.
func (t *Tracer) Start(name string, parent SpanID) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		tracer: t,
		id:     SpanID(t.next.Add(1)),
		parent: parent,
		name:   name,
		start:  time.Now(),
	}
	t.mu.Lock()
	t.active[s.id] = s
	t.mu.Unlock()
	return s
}

// record moves an ended span from the active set into the ring.
func (t *Tracer) record(s *Span, track string, attrs map[string]any, end time.Time) {
	if t == nil {
		return
	}
	rec := Record{
		Trace:  t.id,
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Track:  track,
		Start:  s.start,
		End:    end,
	}
	if len(attrs) > 0 {
		rec.Attrs = make(map[string]any, len(attrs))
		for k, v := range attrs {
			rec.Attrs[k] = v
		}
	}
	t.mu.Lock()
	delete(t.active, s.id)
	t.pushLocked(rec)
	t.mu.Unlock()
	if t.obs.Tracing() {
		f := obs.Fields{
			"trace":   rec.Trace,
			"span":    int64(rec.ID),
			"name":    rec.Name,
			"start":   rec.Start.Format(time.RFC3339Nano),
			"seconds": rec.Seconds(),
		}
		if rec.Parent != 0 {
			f["parent"] = int64(rec.Parent)
		}
		if rec.Track != "" {
			f["track"] = rec.Track
		}
		for k, v := range rec.Attrs {
			f["attr_"+k] = v
		}
		t.obs.Emit("span", f)
	}
}

// pushLocked inserts one completed record into the bounded ring; the
// caller holds t.mu.
func (t *Tracer) pushLocked(rec Record) {
	if len(t.ring) < t.limit {
		t.ring = append(t.ring, rec)
		return
	}
	// Full: overwrite the oldest-ended span (a leaf; parents end
	// later) so the tree above the survivors stays intact.
	t.ring[t.head] = rec
	t.head = (t.head + 1) % t.limit
	t.dropped.Add(1)
	t.dropCtr.Inc()
}

// Log records an already-finished interval directly, without a live
// Span: the caller knows the start and end after the fact (a master
// goroutine reconstructing each worker's barrier wait once the round
// barrier clears). It allocates and returns the next span ID so logged
// spans interleave with live ones in one consistent ID order. A nil
// tracer returns 0.
func (t *Tracer) Log(name, track string, parent SpanID, start, end time.Time, attrs map[string]any) SpanID {
	if t == nil {
		return 0
	}
	rec := Record{
		Trace:  t.id,
		ID:     SpanID(t.next.Add(1)),
		Parent: parent,
		Name:   name,
		Track:  track,
		Start:  start,
		End:    end,
	}
	if len(attrs) > 0 {
		rec.Attrs = make(map[string]any, len(attrs))
		for k, v := range attrs {
			rec.Attrs[k] = v
		}
	}
	t.mu.Lock()
	t.pushLocked(rec)
	t.mu.Unlock()
	return rec.ID
}

// Adopt merges a span recorded by another process into this trace (the
// service adopting a client's request spans uploaded after the job).
// The record keeps its own ID — cooperating tracers use disjoint
// Options.Base ranges so adopted IDs cannot collide with local ones —
// but its Trace is rewritten to this tracer's, making the merged
// snapshot one stitched forest. Records with ID 0 are rejected.
func (t *Tracer) Adopt(rec Record) error {
	if t == nil {
		return nil
	}
	if rec.ID == 0 {
		return errZeroSpanID
	}
	rec.Trace = t.id
	t.mu.Lock()
	t.pushLocked(rec)
	t.mu.Unlock()
	return nil
}

// Snapshot returns the completed spans recorded so far, ordered by span
// ID (creation order), which for a single-goroutine trace is also
// depth-first tree order.
func (t *Tracer) Snapshot() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Record(nil), t.ring...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ActiveStack returns the currently open spans as Records (End left
// zero), ordered root-first by span ID. For one goroutine's trace this
// is the live call stack; with concurrent children it is the open-span
// forest flattened in creation order.
func (t *Tracer) ActiveStack() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Record, 0, len(t.active))
	for _, s := range t.active {
		s.mu.Lock()
		rec := Record{
			Trace:  t.id,
			ID:     s.id,
			Parent: s.parent,
			Name:   s.name,
			Track:  s.track,
			Start:  s.start,
		}
		if len(s.attrs) > 0 {
			rec.Attrs = make(map[string]any, len(s.attrs))
			for k, v := range s.attrs {
				rec.Attrs[k] = v
			}
		}
		s.mu.Unlock()
		out = append(out, rec)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Dropped returns how many completed spans were lost to the recorder
// cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Context plumbing: the tracer and the current span ride the context so
// instrumented layers correlate without explicit wiring.

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// NewContext returns ctx carrying the tracer (and no current span: the
// next StartSpan opens a root).
func NewContext(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// FromContext returns the tracer carried by ctx, or nil. A nil ctx is
// allowed (some layers hold optional contexts).
func FromContext(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// ContextWithSpan returns ctx with the given span current (children
// started from the returned context nest under it).
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey, s)
}

// SpanFromContext returns the current span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// StartSpan opens a span named name under the context's current span
// (a root when there is none) and returns a derived context carrying
// it. Without a tracer on the context it returns (ctx, nil) at the
// cost of two context lookups — the disabled fast path.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := FromContext(ctx)
	if t == nil {
		return ctx, nil
	}
	var parent SpanID
	var track string
	if cur := SpanFromContext(ctx); cur != nil {
		parent = cur.id
		track = cur.Track()
	}
	s := t.Start(name, parent)
	if track != "" {
		s.SetTrack(track)
	}
	return context.WithValue(ctx, spanKey, s), s
}

// IDs returns the correlation pair carried by ctx: the trace ID and the
// current span ID ("" and 0 without a tracer). Serving layers put these
// in response headers and access logs.
func IDs(ctx context.Context) (traceID string, spanID SpanID) {
	t := FromContext(ctx)
	if t == nil {
		return "", 0
	}
	if s := SpanFromContext(ctx); s != nil {
		return t.id, s.id
	}
	return t.id, 0
}

// Sampler decides which traces are recorded: every Nth trace gets one.
// It is the hot-path guard for always-on servers — an unsampled job
// runs with a nil tracer and pays nothing. A nil *Sampler samples
// nothing; Every(1) samples everything.
type Sampler struct {
	every int64
	n     atomic.Int64
}

// Every returns a sampler selecting one trace in every n (n <= 0:
// nothing is sampled; n == 1: everything).
func Every(n int64) *Sampler {
	if n <= 0 {
		return nil
	}
	return &Sampler{every: n}
}

// Sample reports whether the next trace should be recorded. The
// decision is a deterministic counter (the 1st, n+1st, 2n+1st ... calls
// sample), not randomness, so tests and replays are stable.
func (s *Sampler) Sample() bool {
	if s == nil {
		return false
	}
	return (s.n.Add(1)-1)%s.every == 0
}

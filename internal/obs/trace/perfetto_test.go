package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fixedSpans is a two-trace forest built from constants so the exporter
// output is byte-stable: trace "job-1" has root→child, trace "job-2" a
// single root with attrs.
func fixedSpans() []Record {
	t0 := time.Unix(100, 0)
	return []Record{
		{Trace: "job-2", ID: 1, Name: "run", Start: t0.Add(5 * time.Millisecond), End: t0.Add(9 * time.Millisecond),
			Attrs: map[string]any{"circuit": "comp"}},
		{Trace: "job-1", ID: 1, Name: "job", Start: t0, End: t0.Add(10 * time.Millisecond)},
		{Trace: "job-1", ID: 2, Parent: 1, Name: "queue", Start: t0.Add(time.Millisecond), End: t0.Add(3 * time.Millisecond)},
	}
}

const goldenPerfetto = `{
 "traceEvents": [
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 1,
   "args": {
    "name": "job-1"
   }
  },
  {
   "name": "job",
   "ph": "X",
   "ts": 0,
   "dur": 10000,
   "pid": 1,
   "tid": 1,
   "cat": "powder",
   "args": {
    "span": 1
   }
  },
  {
   "name": "queue",
   "ph": "X",
   "ts": 1000,
   "dur": 2000,
   "pid": 1,
   "tid": 1,
   "cat": "powder",
   "args": {
    "parent": 1,
    "span": 2
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 2,
   "args": {
    "name": "job-2"
   }
  },
  {
   "name": "run",
   "ph": "X",
   "ts": 5000,
   "dur": 4000,
   "pid": 1,
   "tid": 2,
   "cat": "powder",
   "args": {
    "circuit": "comp",
    "span": 1
   }
  }
 ],
 "displayTimeUnit": "ms"
}
`

func TestWritePerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, fixedSpans()); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	if got := buf.String(); got != goldenPerfetto {
		t.Errorf("Perfetto output drifted from golden.\ngot:\n%s\nwant:\n%s", got, goldenPerfetto)
	}
}

func TestWritePerfettoParsesAndStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, fixedSpans()); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", file.DisplayTimeUnit)
	}
	meta, complete := 0, 0
	tids := map[int]bool{}
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			tids[ev.Tid] = true
			if ev.Dur < 0 || ev.Ts < 0 {
				t.Errorf("event %q has negative ts/dur", ev.Name)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 2 || complete != 3 {
		t.Errorf("got %d metadata + %d complete events, want 2 + 3", meta, complete)
	}
	if len(tids) != 2 {
		t.Errorf("spans spread over %d tids, want 2 (one per trace)", len(tids))
	}
}

func TestWritePerfettoEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, nil); err != nil {
		t.Fatalf("WritePerfetto(nil): %v", err)
	}
	if !strings.Contains(buf.String(), `"traceEvents": []`) {
		t.Errorf("empty export should still emit a traceEvents array, got %s", buf.String())
	}
}

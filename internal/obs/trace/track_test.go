package trace

import (
	"context"
	"testing"
	"time"
)

func TestTrackInheritance(t *testing.T) {
	tr := New("tracks", Options{})
	ctx := NewContext(context.Background(), tr)
	ctx, region := StartSpan(ctx, "region")
	region.SetTrack("worker-3")
	cctx, prove := StartSpan(ctx, "prove")
	_, solve := StartSpan(cctx, "sat-solve")
	solve.End()
	prove.End()
	region.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	for _, s := range spans {
		if s.Track != "worker-3" {
			t.Errorf("span %q track = %q, want worker-3 (children inherit the parent's lane)", s.Name, s.Track)
		}
	}
}

func TestTrackNotInheritedAcrossTracers(t *testing.T) {
	tr := New("plain", Options{})
	s := tr.Start("solo", 0)
	s.End()
	if got := tr.Snapshot()[0].Track; got != "" {
		t.Errorf("untracked span has track %q, want empty", got)
	}
	var nilSpan *Span
	nilSpan.SetTrack("x") // must not panic
	if nilSpan.Track() != "" {
		t.Error("nil span Track() should be empty")
	}
}

func TestTracerLogRetroactiveSpan(t *testing.T) {
	tr := New("retro", Options{})
	root := tr.Start("round", 0)
	start := time.Unix(300, 0)
	end := start.Add(5 * time.Millisecond)
	id := tr.Log("barrier-wait", "worker-1", root.ID(), start, end, map[string]any{"region": 1})
	if id == 0 {
		t.Fatal("Log returned span ID 0")
	}
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	var logged Record
	for _, s := range spans {
		if s.Name == "barrier-wait" {
			logged = s
		}
	}
	if logged.ID != id || logged.Parent != root.ID() || logged.Track != "worker-1" {
		t.Errorf("logged span = %+v, want id %d parent %d track worker-1", logged, id, root.ID())
	}
	if !logged.Start.Equal(start) || !logged.End.Equal(end) {
		t.Errorf("logged interval [%v..%v], want [%v..%v]", logged.Start, logged.End, start, end)
	}
	if logged.Attrs["region"] != 1 {
		t.Errorf("logged attrs = %v", logged.Attrs)
	}
	if tr.Log("x", "", 0, start, end, nil) == 0 {
		t.Error("second Log returned 0")
	}
	var nilTr *Tracer
	if nilTr.Log("x", "", 0, start, end, nil) != 0 {
		t.Error("nil tracer Log should return 0")
	}
}

func TestTracerAdoptRewritesTraceAndRejectsZeroID(t *testing.T) {
	tr := New("server", Options{})
	job := tr.Start("job", 0)
	job.End()

	foreign := Record{
		Trace: "client-abc", ID: 1<<32 + 1, Name: "client",
		Start: time.Unix(400, 0), End: time.Unix(401, 0),
	}
	if err := tr.Adopt(foreign); err != nil {
		t.Fatalf("Adopt: %v", err)
	}
	if err := tr.Adopt(Record{Name: "broken"}); err == nil {
		t.Fatal("Adopt accepted a record with span ID 0")
	}

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	for _, s := range spans {
		if s.Trace != "server" {
			t.Errorf("span %q trace = %q; Adopt must rewrite onto the owning tracer", s.Name, s.Trace)
		}
	}
	if err := Validate(spans); err != nil {
		t.Errorf("Validate after adopt: %v", err)
	}
}

func TestOptionsBaseDisjointIDSpaces(t *testing.T) {
	const base = 1 << 32
	cli := New("shared", Options{Base: base})
	srv := New("shared", Options{})

	cRoot := cli.Start("client", 0)
	cRoot.End()
	sJob := srv.Start("job", SpanID(cRoot.ID()))
	sRun := srv.Start("run", sJob.ID())
	sRun.End()
	sJob.End()

	if cRoot.ID() <= base {
		t.Fatalf("client span ID %d, want > base %d", cRoot.ID(), base)
	}
	if sJob.ID() >= base {
		t.Fatalf("server span ID %d collides with the client space", sJob.ID())
	}

	// The merged forest (the /v1/jobs/{id}/spans stitch) must be one
	// connected, valid tree rooted at the client span.
	merged := srv.Snapshot()
	for _, rec := range cli.Snapshot() {
		rec.Trace = "shared"
		merged = append(merged, rec)
	}
	// Widen the client root to contain the server spans, as a real
	// client root (submit → result) does by construction.
	for i := range merged {
		if merged[i].Name == "client" {
			merged[i].Start = time.Time{}.Add(time.Second)
			merged[i].End = time.Now().Add(time.Hour)
		}
	}
	if err := Validate(merged); err != nil {
		t.Fatalf("Validate(merged): %v", err)
	}
	roots := Roots(merged)
	if len(roots) != 1 || roots[0].Name != "client" {
		t.Fatalf("merged forest roots = %v, want exactly the client span", roots)
	}
}

package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile starts a CPU profile written to path and returns the
// func that stops it and closes the file. Profiles are best-effort
// debugging aids: the returned stop func never fails the run.
func StartCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %v", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %v", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile runs a GC and writes the current heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %v", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: heap profile: %v", err)
	}
	return nil
}

package obs

import (
	"sort"
	"sync"
)

// Ledger outcome codes of one recorded attempt.
const (
	// LedgerApplied marks an attempt that was performed and kept.
	LedgerApplied = "applied"
	// LedgerRejected marks an attempt discarded at some pipeline stage;
	// LedgerAttempt.Reason carries the reject-reason code.
	LedgerRejected = "rejected"
)

// defaultLedgerLimit bounds the retained entries per outcome class when
// the caller does not choose one.
const defaultLedgerLimit = 4096

// LedgerProof records the permissibility-proof effort one attempt
// consumed, summed over the initial check and any budget-escalated
// retries.
type LedgerProof struct {
	// Verdict is the final ATPG verdict ("permissible",
	// "not-permissible", "aborted").
	Verdict string `json:"verdict"`
	// Conflicts and Decisions sum the SAT effort across all proof rounds.
	Conflicts int64 `json:"conflicts"`
	Decisions int64 `json:"decisions"`
	// Seconds is the total proof wall time.
	Seconds float64 `json:"seconds"`
	// Budget is the conflict budget of the last round (escalations grow
	// it geometrically).
	Budget int64 `json:"budget,omitempty"`
	// Escalations counts budget-escalated retries beyond the first proof.
	Escalations int `json:"escalations,omitempty"`
}

// LedgerNodeDelta is one node's share of an applied attempt's realized
// power change (positive = power removed at that node).
type LedgerNodeDelta struct {
	Node  string  `json:"node"`
	Delta float64 `json:"delta"`
}

// LedgerAttempt is the provenance record of one substitution attempt:
// what was tried, what the pipeline decided at each stage, and — for
// applied attempts — the realized power change measured by re-running
// the power model on the touched cone.
type LedgerAttempt struct {
	// Seq orders attempts within the run (1-based, assigned by Record).
	Seq int `json:"seq"`
	// Kind is the substitution class ("OS2", "IS2", "OS3", "IS3").
	Kind string `json:"kind"`
	// Target and Source describe the substituted and substituting
	// signals ("stem 12", "branch 12->34.1"; "!34", "nand2(34,56)").
	Target string `json:"target"`
	Source string `json:"source"`
	// PredictedGain is the estimated power gain PG_A+PG_B+PG_C at
	// selection time.
	PredictedGain float64 `json:"predicted_gain"`
	// Outcome is LedgerApplied or LedgerRejected.
	Outcome string `json:"outcome"`
	// Reason is the reject-reason code ("" for applied attempts).
	Reason string `json:"reason,omitempty"`
	// Proof is the permissibility-proof record; nil when the attempt was
	// discarded before reaching the checker.
	Proof *LedgerProof `json:"proof,omitempty"`
	// PowerBefore/PowerAfter bracket the apply (applied attempts only).
	PowerBefore float64 `json:"power_before,omitempty"`
	PowerAfter  float64 `json:"power_after,omitempty"`
	// RealizedGain is PowerBefore - PowerAfter: the measured drop of
	// P = sum C(i)*E(i), which telescopes exactly to the run's headline
	// reduction when summed over all applied attempts.
	RealizedGain float64 `json:"realized_gain,omitempty"`
	// Cone decomposes RealizedGain into per-node contributions over the
	// touched cone, largest magnitude first; an "(other)" entry keeps the
	// decomposition exact when the cone is wider than the retention cap.
	Cone []LedgerNodeDelta `json:"cone,omitempty"`
	// Region is the partition region that proposed the attempt in a
	// parallel run (1-based so the zero value marks sequential runs and
	// stays omitted from JSON).
	Region int `json:"region,omitempty"`
}

// Ledger is a bounded-memory record of every substitution attempt of one
// optimization run. Applied and rejected entries are retained in
// separate rings so a flood of rejects can never evict the attribution
// table; evicted entries stay counted. A nil Ledger is a no-op, like
// every other obs instrument.
type Ledger struct {
	mu    sync.Mutex
	limit int

	applied        []LedgerAttempt
	appliedDropped int64

	rejected        []LedgerAttempt
	rejectedStart   int // ring head within rejected
	rejectedDropped int64

	rejects   map[string]int // reason -> count, including count-only rejects
	attempts  int            // recorded attempts (not count-only)
	seq       int
	predicted float64 // sum of PredictedGain over applied attempts
	realized  float64 // sum of RealizedGain over applied attempts
}

// NewLedger returns a ledger retaining up to limit entries per outcome
// class (limit <= 0 uses the default of 4096).
func NewLedger(limit int) *Ledger {
	if limit <= 0 {
		limit = defaultLedgerLimit
	}
	return &Ledger{limit: limit, rejects: make(map[string]int)}
}

// Record appends one attempt, assigns its sequence number, and returns
// it. Totals (attempt counts, predicted/realized sums) are tracked even
// when the retention bound later drops the entry, so summary totals stay
// exact on arbitrarily long runs.
func (l *Ledger) Record(a LedgerAttempt) int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	a.Seq = l.seq
	l.attempts++
	if a.Outcome == LedgerApplied {
		l.predicted += a.PredictedGain
		l.realized += a.RealizedGain
		if len(l.applied) < l.limit {
			l.applied = append(l.applied, a)
		} else {
			l.appliedDropped++
		}
		return a.Seq
	}
	l.rejects[a.Reason]++
	if len(l.rejected) < l.limit {
		l.rejected = append(l.rejected, a)
	} else {
		l.rejected[l.rejectedStart] = a
		l.rejectedStart = (l.rejectedStart + 1) % l.limit
		l.rejectedDropped++
	}
	return a.Seq
}

// CountReject counts a rejected candidate without materializing an
// entry. The optimizer uses it for bulk invalidations (stale candidates
// after an apply) where per-entry records would be noise.
func (l *Ledger) CountReject(reason string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.rejects[reason]++
	l.mu.Unlock()
}

// LedgerNodeAttribution aggregates the realized gain landed on one node
// across all applied attempts.
type LedgerNodeAttribution struct {
	Node     string  `json:"node"`
	Moves    int     `json:"moves"`
	Realized float64 `json:"realized_gain"`
}

// LedgerSummary is the serializable outcome of a run's ledger: exact
// totals plus the retained entries. It is what core.Result carries, what
// `powder -ledger-json` writes, and what powderd serves at
// /v1/jobs/{id}/ledger.
type LedgerSummary struct {
	// Activity names the workload activity model the run's estimates —
	// and therefore every predicted and realized gain below — were
	// computed under. Empty means the uniform temporal-independence
	// assumption; otherwise it carries the activity source and coverage
	// (e.g. "workload.vcd sha256:… matched 5/7 inputs").
	Activity string `json:"activity,omitempty"`
	// Attempts counts recorded attempts (selected candidates that went
	// through the delay/proof/apply stages).
	Attempts int `json:"attempts"`
	// Applied counts performed substitutions.
	Applied int `json:"applied"`
	// Rejected counts discarded candidates by reason code, including
	// count-only rejects that have no entry.
	Rejected map[string]int `json:"rejected,omitempty"`
	// DroppedMoves/DroppedRejects count entries evicted by the retention
	// bound (the totals above still include them).
	DroppedMoves   int64 `json:"dropped_moves,omitempty"`
	DroppedRejects int64 `json:"dropped_rejects,omitempty"`
	// PredictedGain and RealizedGain sum over all applied attempts;
	// RealizedGain equals the run's headline power drop up to float
	// round-off.
	PredictedGain float64 `json:"predicted_gain"`
	RealizedGain  float64 `json:"realized_gain"`
	// Moves is the attribution table: applied attempts in apply order.
	Moves []LedgerAttempt `json:"moves,omitempty"`
	// Rejects holds the retained rejected attempts in record order.
	Rejects []LedgerAttempt `json:"rejects,omitempty"`
	// ByNode aggregates the per-node cone deltas of all retained moves,
	// largest realized gain first.
	ByNode []LedgerNodeAttribution `json:"by_node,omitempty"`
}

// Summary snapshots the ledger; nil ledgers summarize as nil.
func (l *Ledger) Summary() *LedgerSummary {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s := &LedgerSummary{
		Attempts:       l.attempts,
		Applied:        len(l.applied) + int(l.appliedDropped),
		Rejected:       make(map[string]int, len(l.rejects)),
		DroppedMoves:   l.appliedDropped,
		DroppedRejects: l.rejectedDropped,
		PredictedGain:  l.predicted,
		RealizedGain:   l.realized,
		Moves:          append([]LedgerAttempt(nil), l.applied...),
	}
	for reason, n := range l.rejects {
		s.Rejected[reason] = n
	}
	s.Rejects = make([]LedgerAttempt, 0, len(l.rejected))
	for i := 0; i < len(l.rejected); i++ {
		s.Rejects = append(s.Rejects, l.rejected[(l.rejectedStart+i)%len(l.rejected)])
	}
	s.ByNode = attributeByNode(s.Moves)
	return s
}

// Brief returns a copy of the summary without the entry slices, for
// embedding in reports where only the totals matter.
func (s *LedgerSummary) Brief() *LedgerSummary {
	if s == nil {
		return nil
	}
	b := *s
	b.Moves, b.Rejects, b.ByNode = nil, nil, nil
	return &b
}

// attributeByNode folds the cone deltas of the moves into a per-node
// table sorted by descending realized gain.
func attributeByNode(moves []LedgerAttempt) []LedgerNodeAttribution {
	type agg struct {
		moves    int
		realized float64
	}
	byNode := make(map[string]*agg)
	for _, m := range moves {
		seen := make(map[string]bool, len(m.Cone))
		for _, d := range m.Cone {
			a := byNode[d.Node]
			if a == nil {
				a = &agg{}
				byNode[d.Node] = a
			}
			a.realized += d.Delta
			if !seen[d.Node] {
				a.moves++
				seen[d.Node] = true
			}
		}
	}
	out := make([]LedgerNodeAttribution, 0, len(byNode))
	for node, a := range byNode {
		out = append(out, LedgerNodeAttribution{Node: node, Moves: a.moves, Realized: a.realized})
	}
	// Deterministic order: realized gain descending, name ascending.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Realized != out[j].Realized {
			return out[i].Realized > out[j].Realized
		}
		return out[i].Node < out[j].Node
	})
	return out
}

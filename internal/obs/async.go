package obs

import (
	"sync"
	"sync/atomic"
)

// defaultAsyncBuffer is the AsyncSink channel depth when the caller does
// not choose one.
const defaultAsyncBuffer = 8192

// AsyncSink decouples event producers from a slow sink: Emit enqueues
// onto a bounded channel and NEVER blocks — when the consumer falls
// behind and the channel fills, the event is dropped and counted
// (drop-and-count policy). A single goroutine drains the channel into
// the wrapped sink, so the wrapped sink needs no concurrency safety of
// its own beyond what Emit-from-one-goroutine requires.
//
// This is the sink to put in front of anything that does I/O (JSONLSink
// on a file, a network writer): the optimizer hot path then pays one
// channel send per event, worst case one counter increment.
type AsyncSink struct {
	inner   Sink
	ch      chan Event
	quit    chan struct{}
	done    chan struct{}
	closing sync.Once
	dropped atomic.Int64
	counter *Counter // optional registry counter ("obs.dropped.events")
}

// NewAsyncSink starts the drain goroutine and returns the sink.
// buffer <= 0 uses the default of 8192. dropped, when non-nil, is
// incremented on every dropped event in addition to the internal count
// (wire the registry counter "obs.dropped.events" here so drops surface
// as obs_dropped_events_total in the Prometheus exposition).
func NewAsyncSink(inner Sink, buffer int, dropped *Counter) *AsyncSink {
	if buffer <= 0 {
		buffer = defaultAsyncBuffer
	}
	s := &AsyncSink{
		inner:   inner,
		ch:      make(chan Event, buffer),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		counter: dropped,
	}
	go s.drain()
	return s
}

func (s *AsyncSink) drain() {
	defer close(s.done)
	for {
		select {
		case e := <-s.ch:
			s.inner.Emit(e)
		case <-s.quit:
			// Flush whatever is already buffered, then stop.
			for {
				select {
				case e := <-s.ch:
					s.inner.Emit(e)
				default:
					return
				}
			}
		}
	}
}

// Emit enqueues the event without blocking; a full buffer (or a closed
// sink) drops it and bumps the drop counters.
func (s *AsyncSink) Emit(e Event) {
	select {
	case <-s.quit:
		s.drop()
		return
	default:
	}
	select {
	case s.ch <- e:
	default:
		s.drop()
	}
}

func (s *AsyncSink) drop() {
	s.dropped.Add(1)
	s.counter.Inc()
}

// Dropped returns how many events were discarded.
func (s *AsyncSink) Dropped() int64 { return s.dropped.Load() }

// Close flushes the buffered events into the wrapped sink and stops the
// drain goroutine; it blocks until the flush finishes. Emit calls racing
// or following Close are dropped (and counted), never a panic.
// Idempotent.
func (s *AsyncSink) Close() {
	s.closing.Do(func() { close(s.quit) })
	<-s.done
	// Events from Emit calls that raced the flush are still in the
	// channel; account for them as dropped rather than losing them
	// silently.
	for {
		select {
		case <-s.ch:
			s.drop()
		default:
			return
		}
	}
}

package obs

import (
	"math"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exposition byte-for-byte against
// hand-written text. The expected bucket placement follows from the
// internal layout (geometric, growth 2^(1/4), from 1e-7): an observation
// lands in the internal bucket whose upper edge is the first at or above
// it, and an exposition bound counts every internal bucket whose upper
// edge is at or below the bound. 0.25 -> internal upper ~0.2966 (counted
// from le="0.5" on), 0.5 -> ~0.5932 (from le="1"), 3.0 -> ~3.355 (from
// le="5").
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.applied").Add(7)
	h := r.Histogram("atpg.check.seconds")
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(3.0)

	const golden = `# TYPE core_applied_total counter
core_applied_total 7
# TYPE atpg_check_seconds histogram
atpg_check_seconds_bucket{le="1e-06"} 0
atpg_check_seconds_bucket{le="1e-05"} 0
atpg_check_seconds_bucket{le="0.0001"} 0
atpg_check_seconds_bucket{le="0.001"} 0
atpg_check_seconds_bucket{le="0.01"} 0
atpg_check_seconds_bucket{le="0.1"} 0
atpg_check_seconds_bucket{le="0.5"} 1
atpg_check_seconds_bucket{le="1"} 2
atpg_check_seconds_bucket{le="2.5"} 2
atpg_check_seconds_bucket{le="5"} 3
atpg_check_seconds_bucket{le="10"} 3
atpg_check_seconds_bucket{le="30"} 3
atpg_check_seconds_bucket{le="60"} 3
atpg_check_seconds_bucket{le="300"} 3
atpg_check_seconds_bucket{le="1800"} 3
atpg_check_seconds_bucket{le="+Inf"} 3
atpg_check_seconds_sum 3.75
atpg_check_seconds_count 3
`
	var sb strings.Builder
	r.WritePrometheus(&sb, "")
	if sb.String() != golden {
		t.Errorf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", sb.String(), golden)
	}
}

func TestWritePrometheusPrefixAndTotalSuffix(t *testing.T) {
	r := NewRegistry()
	r.Counter("obs.dropped.events").Inc()
	r.Counter("already.a.total").Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb, "powder_")
	out := sb.String()
	if !strings.Contains(out, "powder_obs_dropped_events_total 1") {
		t.Errorf("missing prefixed counter:\n%s", out)
	}
	// A name already ending in _total must not get a second suffix.
	if strings.Contains(out, "_total_total") {
		t.Errorf("doubled _total suffix:\n%s", out)
	}
}

func TestPromNameMangling(t *testing.T) {
	cases := map[string]string{
		"atpg.check.seconds":    "atpg_check_seconds",
		"core.rejects.low-gain": "core_rejects_low_gain",
		"a:b_c9":                "a:b_c9",
		"9lives":                "_lives",
	}
	for in, want := range cases {
		if got := promName("", in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := promName("powder_", "x.y"); got != "powder_x_y" {
		t.Errorf("prefixed = %q", got)
	}
}

// TestCumulativeContract pins the re-bucketing against an exact count:
// each exposition bound's count never exceeds the exact number of
// observations at or below it, and never misses one at or below
// bound/growth (the documented <= one-internal-bucket undercount).
func TestCumulativeContract(t *testing.T) {
	h := NewHistogram()
	obs := []float64{1e-7, 3e-6, 8e-5, 0.002, 0.04, 0.3, 0.7, 1.5, 4, 20, 100, 1000, 5000}
	for _, v := range obs {
		h.Observe(v)
	}
	counts := h.Cumulative(ExpositionBounds)
	growth := math.Pow(2, 0.25)
	var prev int64
	for i, bound := range ExpositionBounds {
		if counts[i] < prev {
			t.Fatalf("cumulative counts decrease at %v", bound)
		}
		prev = counts[i]
		var exact, lower int64
		for _, v := range obs {
			if v <= bound {
				exact++
			}
			if v <= bound/growth {
				lower++
			}
		}
		if counts[i] > exact {
			t.Errorf("bound %v: count %d exceeds exact %d", bound, counts[i], exact)
		}
		if counts[i] < lower {
			t.Errorf("bound %v: count %d misses observations below %v", bound, counts[i], bound/growth)
		}
	}
	var nilH *Histogram
	for _, c := range nilH.Cumulative(ExpositionBounds) {
		if c != 0 {
			t.Fatal("nil histogram has nonzero cumulative counts")
		}
	}
}

// TestQuantileKnownDistributions pins the quantile estimator on
// distributions with known quantiles; the estimate must be an upper
// bound within the documented ~19% bucket error.
func TestQuantileKnownDistributions(t *testing.T) {
	growth := math.Pow(2, 0.25)

	// Uniform 1..1000 (seconds scale).
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	for _, c := range []struct{ q, true float64 }{
		{0.50, 500}, {0.90, 900}, {0.99, 990}, {1.0, 1000},
	} {
		got := h.Quantile(c.q)
		if got < c.true || got > c.true*growth {
			t.Errorf("uniform q%.2f = %v, want in [%v, %v]", c.q, got, c.true, c.true*growth)
		}
	}

	// Point mass: every quantile is the single bucket's upper edge.
	p := NewHistogram()
	for i := 0; i < 100; i++ {
		p.Observe(0.125)
	}
	lo, hi := p.Quantile(0.01), p.Quantile(0.99)
	if lo != hi {
		t.Errorf("point mass quantiles differ: %v vs %v", lo, hi)
	}
	if lo < 0.125 || lo > 0.125*growth {
		t.Errorf("point mass quantile %v outside [0.125, %v]", lo, 0.125*growth)
	}

	// Bimodal: p50 must sit at the low mode, p99 at the high mode.
	b := NewHistogram()
	for i := 0; i < 90; i++ {
		b.Observe(0.001)
	}
	for i := 0; i < 10; i++ {
		b.Observe(10)
	}
	if got := b.Quantile(0.50); got > 0.001*growth {
		t.Errorf("bimodal p50 = %v, want near 0.001", got)
	}
	if got := b.Quantile(0.99); got < 10 || got > 10*growth {
		t.Errorf("bimodal p99 = %v, want near 10", got)
	}

	if got := (*Histogram)(nil).Quantile(0.5); got != 0 {
		t.Errorf("nil quantile = %v", got)
	}
}

// TestRuntimeMetricsValidate round-trips the runtime collectors through
// the in-repo parser.
func TestRuntimeMetricsValidate(t *testing.T) {
	var sb strings.Builder
	WriteRuntimeMetrics(&sb)
	m, err := ValidatePrometheus(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("runtime metrics invalid: %v\n%s", err, sb.String())
	}
	for _, name := range []string{"go_goroutines", "go_memstats_heap_alloc_bytes", "go_gc_cycles_total"} {
		if _, ok := m.Value(name); !ok {
			t.Errorf("missing %s", name)
		}
	}
	if v, _ := m.Value("go_goroutines"); v < 1 {
		t.Errorf("go_goroutines = %v", v)
	}
}

// TestExpositionParsesAndValidates round-trips a full registry through
// the parser's histogram invariants.
func TestExpositionParsesAndValidates(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.applied").Add(3)
	for i := 0; i < 50; i++ {
		r.Histogram("atpg.check.seconds").Observe(float64(i) * 0.01)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb, "powder_")
	m, err := ValidatePrometheus(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, sb.String())
	}
	if m.Types["powder_atpg_check_seconds"] != "histogram" {
		t.Errorf("Types = %v", m.Types)
	}
	if v, ok := m.Value("powder_core_applied_total"); !ok || v != 3 {
		t.Errorf("counter = %v ok=%v", v, ok)
	}
}

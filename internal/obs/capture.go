package obs

import "sync"

// CaptureSink records every emitted event in memory. It exists for
// tests that assert on the event stream (rollbacks, escalations, stop
// reasons) without going through a serialization sink.
type CaptureSink struct {
	mu     sync.Mutex
	events []Event
}

// NewCaptureSink returns an empty capture sink.
func NewCaptureSink() *CaptureSink { return &CaptureSink{} }

// Emit records the event.
func (c *CaptureSink) Emit(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a snapshot of the captured events in emission order.
func (c *CaptureSink) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Count returns how many events with the given name were captured.
func (c *CaptureSink) Count(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.events {
		if e.Name == name {
			n++
		}
	}
	return n
}

package obs

// Concurrency hammer for the metrics registry: with the service layer,
// several optimization jobs emit into one shared registry at once, so
// counters, histograms, phase sets, and snapshotting must hold up under
// parallel writers. Run with -race (CI does).

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

const hammerGoroutines = 8

func TestRegistryConcurrentWriters(t *testing.T) {
	reg := NewRegistry()
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < hammerGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Interleave creation and update of a small shared name
				// space so the double-checked registration path races.
				reg.Counter(fmt.Sprintf("c.%d", i%7)).Inc()
				reg.Counter("c.shared").Add(2)
				reg.Histogram(fmt.Sprintf("h.%d", i%5)).Observe(float64(i%97) / 13)
				reg.Histogram("h.shared").Observe(float64(g))
				if i%250 == 0 {
					// Concurrent snapshots must see a consistent registry.
					_ = reg.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	snap := reg.Snapshot()
	if got := snap.Counters["c.shared"]; got != int64(2*perG*hammerGoroutines) {
		t.Fatalf("c.shared = %d, want %d", got, 2*perG*hammerGoroutines)
	}
	var sum int64
	for i := 0; i < 7; i++ {
		sum += snap.Counters[fmt.Sprintf("c.%d", i)]
	}
	if sum != int64(perG*hammerGoroutines) {
		t.Fatalf("sharded counters sum to %d, want %d", sum, perG*hammerGoroutines)
	}
	h := snap.Histograms["h.shared"]
	if h.Count != int64(perG*hammerGoroutines) {
		t.Fatalf("h.shared count = %d, want %d", h.Count, perG*hammerGoroutines)
	}
	wantSum := 0.0
	for g := 0; g < hammerGoroutines; g++ {
		wantSum += float64(g) * perG
	}
	if diff := h.Sum - wantSum; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("h.shared sum = %v, want %v", h.Sum, wantSum)
	}
	if h.Max != float64(hammerGoroutines-1) {
		t.Fatalf("h.shared max = %v, want %d", h.Max, hammerGoroutines-1)
	}
}

func TestPhaseSetConcurrentTimers(t *testing.T) {
	ph := NewPhaseSet()
	var wg sync.WaitGroup
	for g := 0; g < hammerGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				stop := ph.Start(fmt.Sprintf("phase-%d", i%3))
				stop()
				ph.Add("manual", time.Microsecond)
				if i%100 == 0 {
					_ = ph.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := ph.Snapshot()
	manual, ok := snap.Get("manual")
	if !ok || manual.Count != int64(500*hammerGoroutines) {
		t.Fatalf("manual phase count = %+v, want %d segments", manual, 500*hammerGoroutines)
	}
	var segs int64
	for i := 0; i < 3; i++ {
		if p, ok := snap.Get(fmt.Sprintf("phase-%d", i)); ok {
			segs += p.Count
		}
	}
	if segs != int64(500*hammerGoroutines) {
		t.Fatalf("timed segments = %d, want %d", segs, 500*hammerGoroutines)
	}
}

func TestObserverConcurrentEmitToHub(t *testing.T) {
	hub := NewHub(0)
	reg := NewRegistry()
	o := New(hub, reg)
	var wg sync.WaitGroup
	for g := 0; g < hammerGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				o.Emit("tick", Fields{"g": g, "i": i})
				o.Counter("ticks").Inc()
				o.Histogram("tick.val").Observe(float64(i))
			}
		}(g)
	}
	wg.Wait()
	hub.Close()
	if got := int64(len(hub.Events())) + hub.Dropped(); got < int64(300*hammerGoroutines) {
		t.Fatalf("hub saw %d events (buffered+dropped), want >= %d", got, 300*hammerGoroutines)
	}
	if got := o.Counter("ticks").Value(); got != int64(300*hammerGoroutines) {
		t.Fatalf("ticks = %d, want %d", got, 300*hammerGoroutines)
	}
}

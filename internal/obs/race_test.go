package obs

// Concurrency hammer for the metrics registry: with the service layer,
// several optimization jobs emit into one shared registry at once, so
// counters, histograms, phase sets, and snapshotting must hold up under
// parallel writers. Run with -race (CI does).

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

const hammerGoroutines = 8

func TestRegistryConcurrentWriters(t *testing.T) {
	reg := NewRegistry()
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < hammerGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Interleave creation and update of a small shared name
				// space so the double-checked registration path races.
				reg.Counter(fmt.Sprintf("c.%d", i%7)).Inc()
				reg.Counter("c.shared").Add(2)
				reg.Histogram(fmt.Sprintf("h.%d", i%5)).Observe(float64(i%97) / 13)
				reg.Histogram("h.shared").Observe(float64(g))
				if i%250 == 0 {
					// Concurrent snapshots must see a consistent registry.
					_ = reg.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	snap := reg.Snapshot()
	if got := snap.Counters["c.shared"]; got != int64(2*perG*hammerGoroutines) {
		t.Fatalf("c.shared = %d, want %d", got, 2*perG*hammerGoroutines)
	}
	var sum int64
	for i := 0; i < 7; i++ {
		sum += snap.Counters[fmt.Sprintf("c.%d", i)]
	}
	if sum != int64(perG*hammerGoroutines) {
		t.Fatalf("sharded counters sum to %d, want %d", sum, perG*hammerGoroutines)
	}
	h := snap.Histograms["h.shared"]
	if h.Count != int64(perG*hammerGoroutines) {
		t.Fatalf("h.shared count = %d, want %d", h.Count, perG*hammerGoroutines)
	}
	wantSum := 0.0
	for g := 0; g < hammerGoroutines; g++ {
		wantSum += float64(g) * perG
	}
	if diff := h.Sum - wantSum; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("h.shared sum = %v, want %v", h.Sum, wantSum)
	}
	if h.Max != float64(hammerGoroutines-1) {
		t.Fatalf("h.shared max = %v, want %d", h.Max, hammerGoroutines-1)
	}
}

func TestPhaseSetConcurrentTimers(t *testing.T) {
	ph := NewPhaseSet()
	var wg sync.WaitGroup
	for g := 0; g < hammerGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				stop := ph.Start(fmt.Sprintf("phase-%d", i%3))
				stop()
				ph.Add("manual", time.Microsecond)
				if i%100 == 0 {
					_ = ph.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := ph.Snapshot()
	manual, ok := snap.Get("manual")
	if !ok || manual.Count != int64(500*hammerGoroutines) {
		t.Fatalf("manual phase count = %+v, want %d segments", manual, 500*hammerGoroutines)
	}
	var segs int64
	for i := 0; i < 3; i++ {
		if p, ok := snap.Get(fmt.Sprintf("phase-%d", i)); ok {
			segs += p.Count
		}
	}
	if segs != int64(500*hammerGoroutines) {
		t.Fatalf("timed segments = %d, want %d", segs, 500*hammerGoroutines)
	}
}

func TestObserverConcurrentEmitToHub(t *testing.T) {
	hub := NewHub(0)
	reg := NewRegistry()
	o := New(hub, reg)
	var wg sync.WaitGroup
	for g := 0; g < hammerGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				o.Emit("tick", Fields{"g": g, "i": i})
				o.Counter("ticks").Inc()
				o.Histogram("tick.val").Observe(float64(i))
			}
		}(g)
	}
	wg.Wait()
	hub.Close()
	if got := int64(len(hub.Events())) + hub.Dropped(); got < int64(300*hammerGoroutines) {
		t.Fatalf("hub saw %d events (buffered+dropped), want >= %d", got, 300*hammerGoroutines)
	}
	if got := o.Counter("ticks").Value(); got != int64(300*hammerGoroutines) {
		t.Fatalf("ticks = %d, want %d", got, 300*hammerGoroutines)
	}
}

// TestHubConcurrentSubscribeReplayDrop hammers one Hub with parallel
// emitters, churning subscribers (replay + cancel), drop-counter swaps,
// and snapshot readers. The replay cap is tiny so the drop-accounting
// paths run constantly.
func TestHubConcurrentSubscribeReplayDrop(t *testing.T) {
	const (
		limit = 64
		perG  = 500
	)
	hub := NewHub(limit)
	reg := NewRegistry()
	ctrA := reg.Counter("drops.a")
	ctrB := reg.Counter("drops.b")

	var wg sync.WaitGroup
	for g := 0; g < hammerGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 4 {
			case 0, 1: // emitters
				for i := 0; i < perG; i++ {
					hub.Emit(Event{Name: "hammer", Time: time.Now(), Fields: Fields{"g": g, "i": i}})
				}
			case 2: // subscribers: replay a prefix, then cancel (twice — idempotent)
				for i := 0; i < 50; i++ {
					ch, cancel := hub.Subscribe()
					for j := 0; j < 20; j++ {
						if _, ok := <-ch; !ok {
							break
						}
					}
					cancel()
					cancel()
					// Drain whatever was buffered before the cancel closed it.
					for range ch {
					}
				}
			case 3: // drop-counter swaps + snapshot readers
				for i := 0; i < 200; i++ {
					switch i % 3 {
					case 0:
						hub.SetDropCounter(ctrA)
					case 1:
						hub.SetDropCounter(ctrB)
					default:
						hub.SetDropCounter(nil)
					}
					_ = hub.Events()
					_ = hub.Dropped()
				}
			}
		}(g)
	}
	wg.Wait()

	emitters := 0
	for g := 0; g < hammerGoroutines; g++ {
		if g%4 <= 1 {
			emitters++
		}
	}
	emitted := emitters * perG
	if got := len(hub.Events()); got != limit {
		t.Fatalf("replay buffer holds %d events, want the cap %d", got, limit)
	}
	// Every emit past the cap is a counted drop; slow subscribers add more.
	if hub.Dropped() < int64(emitted-limit) {
		t.Fatalf("Dropped = %d, want >= %d", hub.Dropped(), emitted-limit)
	}
	// The registry counters mirror only the drops that happened while they
	// were attached, so they can never exceed the hub's own count.
	if ctrA.Value()+ctrB.Value() > hub.Dropped() {
		t.Fatalf("mirrored drops %d+%d exceed hub total %d", ctrA.Value(), ctrB.Value(), hub.Dropped())
	}

	hub.Close()
	hub.Emit(Event{Name: "after-close"}) // must be a silent no-op
	ch, cancel := hub.Subscribe()
	defer cancel()
	n := 0
	for range ch {
		n++
	}
	if n != limit {
		t.Fatalf("post-close subscriber replayed %d events, want %d", n, limit)
	}
}

// TestHubCloseRace closes the hub while emitters and subscribers are
// still running: every subscriber channel must terminate and nothing may
// panic or race.
func TestHubCloseRace(t *testing.T) {
	hub := NewHub(32)
	var wg sync.WaitGroup
	for g := 0; g < hammerGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 3 {
			case 0:
				for i := 0; i < 300; i++ {
					hub.Emit(Event{Name: fmt.Sprintf("e%d", g), Time: time.Now()})
				}
			case 1:
				for i := 0; i < 30; i++ {
					ch, cancel := hub.Subscribe()
					for range ch {
					}
					cancel()
				}
			default:
				hub.Close() // idempotent, races with everything above
			}
		}(g)
	}
	wg.Wait()
	if got := len(hub.Events()); got > 32 {
		t.Fatalf("replay buffer overflowed its cap: %d > 32", got)
	}
}

package obs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAsyncSinkDeliversInOrder(t *testing.T) {
	var got []Event
	var mu sync.Mutex
	s := NewAsyncSink(SinkFunc(func(e Event) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	}), 16, nil)
	for i := 0; i < 10; i++ {
		s.Emit(Event{Name: "e", Fields: Fields{"i": i}})
	}
	s.Close()
	if len(got) != 10 {
		t.Fatalf("delivered %d events, want 10", len(got))
	}
	for i, e := range got {
		if e.Fields["i"] != i {
			t.Fatalf("event %d out of order: %v", i, e.Fields["i"])
		}
	}
	if s.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", s.Dropped())
	}
}

// TestAsyncSinkDropsWhenFullNeverBlocks pins the drop-and-count policy:
// with the consumer wedged, Emit must return immediately and count every
// overflow in both the internal counter and the registry counter.
func TestAsyncSinkDropsWhenFullNeverBlocks(t *testing.T) {
	reg := NewRegistry()
	block := make(chan struct{})
	var consumed atomic.Int64
	s := NewAsyncSink(SinkFunc(func(Event) {
		<-block
		consumed.Add(1)
	}), 4, reg.Counter("obs.dropped.events"))

	done := make(chan struct{})
	go func() {
		defer close(done)
		// 4 buffered + 1 in the wedged consumer; the rest must drop.
		for i := 0; i < 100; i++ {
			s.Emit(Event{Name: "e"})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked on a wedged consumer")
	}
	close(block)
	s.Close()
	dropped := s.Dropped()
	if dropped == 0 {
		t.Fatal("no drops recorded with a wedged consumer")
	}
	if got := reg.Counter("obs.dropped.events").Value(); got != dropped {
		t.Errorf("registry counter %d != internal %d", got, dropped)
	}
	if consumed.Load()+dropped != 100 {
		t.Errorf("consumed %d + dropped %d != 100 emitted", consumed.Load(), dropped)
	}
}

func TestAsyncSinkCloseFlushesAndIsIdempotent(t *testing.T) {
	var n atomic.Int64
	s := NewAsyncSink(SinkFunc(func(Event) { n.Add(1) }), 64, nil)
	for i := 0; i < 50; i++ {
		s.Emit(Event{Name: "e"})
	}
	s.Close()
	s.Close()
	if n.Load() != 50 {
		t.Fatalf("flushed %d events, want 50", n.Load())
	}
	// Emit after close drops, never panics.
	s.Emit(Event{Name: "late"})
	if s.Dropped() == 0 {
		t.Error("post-close Emit not counted as dropped")
	}
}

// TestAsyncSinkHammer is the -race stress: many producers against a slow
// sink with concurrent Close. Every emitted event must be either
// delivered or counted dropped — none lost, no deadlock, no race.
func TestAsyncSinkHammer(t *testing.T) {
	reg := NewRegistry()
	var delivered atomic.Int64
	s := NewAsyncSink(SinkFunc(func(Event) {
		delivered.Add(1)
		time.Sleep(10 * time.Microsecond) // slow consumer
	}), 8, reg.Counter("obs.dropped.events"))

	const producers = 8
	const perProducer = 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				s.Emit(Event{Name: "e"})
			}
		}()
	}
	// Close concurrently with the tail of production.
	closed := make(chan struct{})
	go func() {
		defer close(closed)
		time.Sleep(2 * time.Millisecond)
		s.Close()
	}()
	wg.Wait()
	<-closed
	s.Close() // idempotent with the concurrent close

	total := delivered.Load() + s.Dropped()
	if total != producers*perProducer {
		t.Fatalf("delivered %d + dropped %d = %d, want %d",
			delivered.Load(), s.Dropped(), total, producers*perProducer)
	}
}

// TestHubDropCounterMirrorsDrops pins the Hub side of the drop
// accounting used by the service's job event streams.
func TestHubDropCounterMirrorsDrops(t *testing.T) {
	reg := NewRegistry()
	h := NewHub(4)
	h.SetDropCounter(reg.Counter("obs.dropped.events"))
	for i := 0; i < 10; i++ {
		h.Emit(Event{Name: "e"})
	}
	h.Close()
	if h.Dropped() == 0 {
		t.Fatal("replay cap never dropped")
	}
	if got := reg.Counter("obs.dropped.events").Value(); got != h.Dropped() {
		t.Errorf("registry counter %d != hub dropped %d", got, h.Dropped())
	}
}

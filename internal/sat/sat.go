// Package sat implements a compact CDCL (conflict-driven clause learning)
// SAT solver: two-watched-literal propagation, first-UIP conflict analysis,
// VSIDS-style variable activities with phase saving, geometric restarts,
// and a conflict budget. The solver backs the ATPG package's permissibility
// proofs; a budget overrun plays the role of an "ATPG abort" in the paper
// (the candidate substitution is then rejected).
package sat

import (
	"context"
	"fmt"
	"math"

	"powder/internal/obs/trace"
)

// Lit is a literal: variable index shifted left once, low bit = negated.
type Lit int32

// Pos returns the positive literal of variable v.
func Pos(v int) Lit { return Lit(v << 1) }

// Neg returns the negative literal of variable v.
func Neg(v int) Lit { return Lit(v<<1 | 1) }

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String renders the literal as v3 or !v3.
func (l Lit) String() string {
	if l.Sign() {
		return fmt.Sprintf("!v%d", l.Var())
	}
	return fmt.Sprintf("v%d", l.Var())
}

// Result is the outcome of Solve.
type Result int

const (
	// Unknown means the conflict budget was exhausted.
	Unknown Result = iota
	// Sat means a satisfying assignment was found (see Value).
	Sat
	// Unsat means the formula (under the assumptions) is unsatisfiable.
	Unsat
)

func (r Result) String() string {
	switch r {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	}
	return "UNKNOWN"
}

type clause struct {
	lits   []Lit
	learnt bool
	act    float64
}

const (
	unassigned int8 = -1
	valFalse   int8 = 0
	valTrue    int8 = 1
)

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	clauses []*clause
	learnts []*clause
	watches [][]*clause // indexed by Lit

	assign  []int8
	level   []int32
	reason  []*clause
	phase   []int8 // saved phase per var
	trail   []Lit
	trailAt []int32 // decision-level boundaries in trail
	qhead   int

	activity []float64
	varInc   float64
	heap     []int32 // binary max-heap of vars by activity
	heapPos  []int32 // var -> heap index, -1 if absent

	clauseInc float64

	ok bool // false once a top-level conflict is found

	// Budget: conflicts allowed per Solve; <=0 means unlimited.
	budget int64

	// Cancellation: Solve polls ctx every pollEvery search-loop
	// iterations and returns Unknown once it is done.
	ctx         context.Context
	pollCounter int
	interrupted bool

	// Statistics.
	Conflicts    int64
	Decisions    int64
	Propagations int64

	seen     []bool // scratch for analyze
	analyzeC []Lit
	model    []int8 // snapshot of the last satisfying assignment
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{varInc: 1, clauseInc: 1, ok: true}
}

// SetBudget limits the number of conflicts a single Solve may spend;
// non-positive means unlimited.
func (s *Solver) SetBudget(conflicts int64) { s.budget = conflicts }

// pollEvery is how many CDCL search-loop iterations pass between
// cancellation polls. Each iteration is one propagate/decide (or
// conflict) step, so the response latency to a cancelled context is a
// few microseconds of search — far below any wall-clock deadline a
// caller would set.
const pollEvery = 64

// SetContext attaches a cancellation context to the solver. Solve polls
// it periodically during search and returns Unknown once the context is
// done; Interrupted then reports true (distinguishing cancellation from
// a conflict-budget overrun). A nil context disables polling.
func (s *Solver) SetContext(ctx context.Context) {
	if ctx != nil && ctx.Done() == nil {
		ctx = nil // never cancellable: skip the polling entirely
	}
	s.ctx = ctx
}

// Interrupted reports whether the last Solve returned Unknown because
// its context was cancelled (rather than because the conflict budget
// ran out).
func (s *Solver) Interrupted() bool { return s.interrupted }

// cancelled polls the attached context at a decimated rate.
func (s *Solver) cancelled() bool {
	if s.ctx == nil {
		return false
	}
	s.pollCounter++
	if s.pollCounter < pollEvery {
		return false
	}
	s.pollCounter = 0
	if s.ctx.Err() != nil {
		s.interrupted = true
		return true
	}
	return false
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assign) }

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, unassigned)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.phase = append(s.phase, valFalse)
	s.activity = append(s.activity, 0)
	s.heapPos = append(s.heapPos, -1)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heapInsert(int32(v))
	return v
}

// value returns the current value of a literal.
func (s *Solver) value(l Lit) int8 {
	a := s.assign[l.Var()]
	if a == unassigned {
		return unassigned
	}
	if l.Sign() {
		return 1 - a
	}
	return a
}

// Value returns the model value of variable v after a Sat result.
func (s *Solver) Value(v int) bool {
	if v < len(s.model) {
		return s.model[v] == valTrue
	}
	return false
}

// AddClause adds a clause at the top level. It returns false if the solver
// became trivially unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause above decision level 0")
	}
	// Normalize: drop duplicate and false literals, detect tautology and
	// satisfied clauses.
	var out []Lit
	seen := make(map[Lit]bool, len(lits))
	for _, l := range lits {
		if l.Var() >= len(s.assign) {
			panic(fmt.Sprintf("sat: literal %v references unallocated variable", l))
		}
		switch {
		case seen[l]:
			continue
		case seen[l.Not()]:
			return true // tautology
		case s.value(l) == valTrue:
			return true // already satisfied at level 0
		case s.value(l) == valFalse:
			continue // literal already false at level 0
		}
		seen[l] = true
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.enqueue(out[0], nil)
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.watch(c)
	return true
}

func (s *Solver) watch(c *clause) {
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], c)
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], c)
}

func (s *Solver) decisionLevel() int { return len(s.trailAt) }

// enqueue asserts literal l with the given reason clause.
func (s *Solver) enqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Sign() {
		s.assign[v] = valFalse
	} else {
		s.assign[v] = valTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns a conflicting clause or
// nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true
		s.qhead++
		s.Propagations++
		ws := s.watches[p]
		s.watches[p] = ws[:0]
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			// Make sure the false literal is lits[1].
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// If the first watch is true, the clause is satisfied.
			if s.value(c.lits[0]) == valTrue {
				s.watches[p] = append(s.watches[p], c)
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != valFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], c)
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			s.watches[p] = append(s.watches[p], c)
			if s.value(c.lits[0]) == valFalse {
				// Conflict: restore the remaining watchers and bail.
				s.watches[p] = append(s.watches[p], ws[i+1:]...)
				s.qhead = len(s.trail)
				return c
			}
			s.enqueue(c.lits[0], c)
		}
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learnt clause
// (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := s.analyzeC[:0]
	learnt = append(learnt, 0) // slot for the asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	var toClear []int

	for {
		s.bumpClause(confl)
		for _, q := range confl.lits {
			if p != -1 && q == p {
				continue
			}
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			toClear = append(toClear, v)
			s.bumpVar(v)
			if int(s.level[v]) == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find the next seen literal on the trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			learnt[0] = p.Not()
			break
		}
		confl = s.reason[v]
	}
	for _, v := range toClear {
		s.seen[v] = false
	}
	s.analyzeC = learnt

	// Backtrack level: second-highest level in the learnt clause.
	bt := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		bt = int(s.level[learnt[1].Var()])
	}
	out := make([]Lit, len(learnt))
	copy(out, learnt)
	return out, bt
}

// backtrackTo undoes assignments above the given decision level.
func (s *Solver) backtrackTo(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := int(s.trailAt[level])
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v]
		s.assign[v] = unassigned
		s.reason[v] = nil
		if s.heapPos[v] < 0 {
			s.heapInsert(int32(v))
		}
	}
	s.trail = s.trail[:bound]
	s.trailAt = s.trailAt[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	if s.heapPos[v] >= 0 {
		s.heapUp(int(s.heapPos[v]))
	}
}

func (s *Solver) bumpClause(c *clause) {
	if !c.learnt {
		return
	}
	c.act += s.clauseInc
	if c.act > 1e20 {
		for _, l := range s.learnts {
			l.act *= 1e-20
		}
		s.clauseInc *= 1e-20
	}
}

// Solve determines satisfiability under the given assumptions. On Sat the
// model is readable via Value. Assumption conflicts yield Unsat.
func (s *Solver) Solve(assumptions ...Lit) Result {
	// One span per solve when the solver's context carries a tracer: the
	// proof's exact CDCL effort (conflicts, decisions, propagations)
	// becomes visible in the run's flamegraph. Without a tracer this is
	// two context lookups, nothing else.
	_, sp := trace.StartSpan(s.ctx, "sat-solve")
	if sp == nil {
		return s.solve(assumptions...)
	}
	c0, d0, p0 := s.Conflicts, s.Decisions, s.Propagations
	res := s.solve(assumptions...)
	sp.SetAttr("result", res.String())
	sp.SetAttr("conflicts", s.Conflicts-c0)
	sp.SetAttr("decisions", s.Decisions-d0)
	sp.SetAttr("propagations", s.Propagations-p0)
	sp.SetAttr("vars", len(s.assign))
	sp.SetAttr("clauses", len(s.clauses))
	sp.End()
	return res
}

func (s *Solver) solve(assumptions ...Lit) Result {
	s.interrupted = false
	if !s.ok {
		return Unsat
	}
	defer s.backtrackTo(0)

	if s.propagate() != nil {
		s.ok = false
		return Unsat
	}

	// Apply assumptions, each on its own decision level.
	for _, a := range assumptions {
		switch s.value(a) {
		case valTrue:
			continue
		case valFalse:
			return Unsat
		}
		s.trailAt = append(s.trailAt, int32(len(s.trail)))
		s.enqueue(a, nil)
		if s.propagate() != nil {
			return Unsat
		}
	}
	rootLevel := s.decisionLevel()

	conflictsAtStart := s.Conflicts
	restartLimit := int64(100)
	conflictsSinceRestart := int64(0)

	for {
		if s.cancelled() {
			return Unknown
		}
		confl := s.propagate()
		if confl != nil {
			s.Conflicts++
			conflictsSinceRestart++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			if s.decisionLevel() <= rootLevel {
				return Unsat
			}
			learnt, bt := s.analyze(confl)
			if bt < rootLevel {
				bt = rootLevel
			}
			s.backtrackTo(bt)
			if len(learnt) == 1 && rootLevel == 0 {
				s.enqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true, act: s.clauseInc}
				s.learnts = append(s.learnts, c)
				if len(learnt) >= 2 {
					s.watch(c)
				}
				s.enqueue(learnt[0], c)
			}
			s.varInc /= 0.95
			s.clauseInc /= 0.999

			if s.budget > 0 && s.Conflicts-conflictsAtStart >= s.budget {
				return Unknown
			}
			if conflictsSinceRestart >= restartLimit {
				conflictsSinceRestart = 0
				restartLimit = int64(float64(restartLimit) * 1.5)
				s.backtrackTo(rootLevel)
			}
			continue
		}

		// Pick a branching variable.
		v := s.pickBranchVar()
		if v < 0 {
			s.model = append(s.model[:0], s.assign...)
			return Sat
		}
		s.Decisions++
		s.trailAt = append(s.trailAt, int32(len(s.trail)))
		if s.phase[v] == valTrue {
			s.enqueue(Pos(v), nil)
		} else {
			s.enqueue(Neg(v), nil)
		}
	}
}

// pickBranchVar pops the highest-activity unassigned variable, or -1.
func (s *Solver) pickBranchVar() int {
	for len(s.heap) > 0 {
		v := s.heapPopMax()
		if s.assign[v] == unassigned {
			return int(v)
		}
	}
	return -1
}

// --- activity heap ---

func (s *Solver) heapLess(i, j int) bool {
	return s.activity[s.heap[i]] > s.activity[s.heap[j]]
}

func (s *Solver) heapSwap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heapPos[s.heap[i]] = int32(i)
	s.heapPos[s.heap[j]] = int32(j)
}

func (s *Solver) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.heapLess(i, parent) {
			break
		}
		s.heapSwap(i, parent)
		i = parent
	}
}

func (s *Solver) heapDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && s.heapLess(l, best) {
			best = l
		}
		if r < n && s.heapLess(r, best) {
			best = r
		}
		if best == i {
			return
		}
		s.heapSwap(i, best)
		i = best
	}
}

func (s *Solver) heapInsert(v int32) {
	s.heap = append(s.heap, v)
	i := len(s.heap) - 1
	s.heapPos[v] = int32(i)
	s.heapUp(i)
}

func (s *Solver) heapPopMax() int32 {
	v := s.heap[0]
	last := len(s.heap) - 1
	s.heapSwap(0, last)
	s.heap = s.heap[:last]
	s.heapPos[v] = -1
	if last > 0 {
		s.heapDown(0)
	}
	return v
}

// Okay reports whether the solver is still consistent at the top level.
func (s *Solver) Okay() bool { return s.ok }

// ActivityOf returns a variable's branching activity (for diagnostics).
func (s *Solver) ActivityOf(v int) float64 {
	if v < 0 || v >= len(s.activity) {
		return math.NaN()
	}
	return s.activity[v]
}

package sat

import (
	"context"
	"testing"
	"time"
)

// TestSolveCancelledMidSearch pins the cancellation latency contract: a
// long-running search on a hard instance must return Unknown promptly
// (well under 100ms) once its context is cancelled.
func TestSolveCancelledMidSearch(t *testing.T) {
	s := New()
	pigeonhole(s, 12, 11) // exponential for resolution; runs for minutes uncancelled
	s.SetBudget(1 << 62)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.SetContext(ctx)

	done := make(chan Result, 1)
	go func() { done <- s.Solve() }()
	// Let the search get properly underway before pulling the plug.
	time.Sleep(50 * time.Millisecond)
	cancel()
	start := time.Now()
	select {
	case r := <-done:
		if r != Unknown {
			t.Fatalf("cancelled Solve = %v, want Unknown", r)
		}
		if d := time.Since(start); d > 100*time.Millisecond {
			t.Errorf("Solve returned %v after cancel, want < 100ms", d)
		}
		if !s.Interrupted() {
			t.Errorf("Interrupted() = false after a cancelled solve")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Solve never returned after cancellation")
	}
}

// TestSolvePreCancelledContext pins that an already-expired context
// aborts the search essentially immediately.
func TestSolvePreCancelledContext(t *testing.T) {
	s := New()
	pigeonhole(s, 12, 11)
	s.SetBudget(1 << 62)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.SetContext(ctx)
	start := time.Now()
	if r := s.Solve(); r != Unknown {
		t.Fatalf("Solve = %v, want Unknown", r)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("pre-cancelled Solve took %v", d)
	}
}

// TestSolveDeadlineContext exercises the deadline flavor used by the
// engine's -timeout path.
func TestSolveDeadlineContext(t *testing.T) {
	s := New()
	pigeonhole(s, 12, 11)
	s.SetBudget(1 << 62)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	s.SetContext(ctx)
	start := time.Now()
	if r := s.Solve(); r != Unknown {
		t.Fatalf("Solve = %v, want Unknown", r)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("deadline solve took %v, want prompt abort", d)
	}
}

// TestSolveBackgroundContextIsFree pins that a non-cancellable context
// is dropped at SetContext time and solving proceeds to a real verdict.
func TestSolveBackgroundContextIsFree(t *testing.T) {
	s := New()
	pigeonhole(s, 4, 4)
	s.SetContext(context.Background())
	if r := s.Solve(); r != Sat {
		t.Fatalf("Solve = %v, want Sat", r)
	}
	if s.Interrupted() {
		t.Errorf("Interrupted() = true without cancellation")
	}
}

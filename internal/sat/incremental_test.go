package sat

import "testing"

// xorClauses emits y = a XOR b onto any adder.
func xorClauses(s ClauseAdder, a, b, y int) {
	s.AddClause(Neg(y), Pos(a), Pos(b))
	s.AddClause(Neg(y), Neg(a), Neg(b))
	s.AddClause(Pos(y), Pos(a), Neg(b))
	s.AddClause(Pos(y), Neg(a), Pos(b))
}

// TestScopeIsolation: two contradictory scopes over a shared base solve
// independently — each sees the base plus its own clauses only.
func TestScopeIsolation(t *testing.T) {
	inc := NewIncremental()
	x := inc.Base().NewVar()

	posScope := inc.Scope()
	posScope.AddClause(Pos(x))
	negScope := inc.Scope()
	negScope.AddClause(Neg(x))

	if r := posScope.Solve(); r != Sat {
		t.Fatalf("pos scope: %v", r)
	}
	if !inc.Base().Value(x) {
		t.Fatal("pos scope model has x false")
	}
	if r := negScope.Solve(); r != Sat {
		t.Fatalf("neg scope: %v", r)
	}
	if inc.Base().Value(x) {
		t.Fatal("neg scope model has x true")
	}
	// Both at once (simulated by asserting the other scope's activation
	// as an assumption) would clash — each alone stays Sat.
	if r := posScope.Solve(Neg(x)); r != Unsat {
		t.Fatalf("pos scope under ¬x: %v", r)
	}
}

// TestScopeUnsatThenRetire: a scope making the formula Unsat retires
// without poisoning the solver for later scopes.
func TestScopeUnsatThenRetire(t *testing.T) {
	inc := NewIncremental()
	a := inc.Base().NewVar()
	b := inc.Base().NewVar()
	inc.Base().AddClause(Pos(a), Pos(b)) // permanent: a ∨ b

	bad := inc.Scope()
	bad.AddClause(Neg(a))
	bad.AddClause(Neg(b))
	if r := bad.Solve(); r != Unsat {
		t.Fatalf("contradictory scope: %v", r)
	}
	bad.Retire()

	good := inc.Scope()
	y := good.NewVar()
	xorClauses(good, a, b, y)
	good.AddClause(Pos(y))
	if r := good.Solve(); r != Sat {
		t.Fatalf("scope after retire: %v", r)
	}
	if inc.Base().Value(a) == inc.Base().Value(b) {
		t.Fatal("model violates the scoped xor")
	}
	if inc.ScopesOpened != 2 || inc.ScopesRetired != 1 {
		t.Fatalf("stats: opened %d retired %d", inc.ScopesOpened, inc.ScopesRetired)
	}
}

// TestScopeAssumptions: per-solve assumptions compose with the scope's
// activation literal.
func TestScopeAssumptions(t *testing.T) {
	inc := NewIncremental()
	a := inc.Base().NewVar()
	sc := inc.Scope()
	y := sc.NewVar()
	sc.AddClause(Neg(a), Pos(y)) // a → y, scoped
	sc.AddClause(Neg(y))         // ¬y, scoped
	if r := sc.Solve(Pos(a)); r != Unsat {
		t.Fatalf("assuming a: %v", r)
	}
	if r := sc.Solve(Neg(a)); r != Sat {
		t.Fatalf("assuming ¬a: %v", r)
	}
}

// TestRetireIdempotent: double Retire is a no-op; use-after-retire panics.
func TestRetireIdempotent(t *testing.T) {
	inc := NewIncremental()
	sc := inc.Scope()
	sc.Retire()
	sc.Retire()
	if inc.ScopesRetired != 1 {
		t.Fatalf("retired count %d", inc.ScopesRetired)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddClause on retired scope did not panic")
		}
	}()
	sc.AddClause(Pos(inc.Base().NewVar()))
}

// TestLearnedClausesSurviveScopes: solve many scoped queries on one
// solver; the clause database stays consistent and results stay correct.
// (A miniature of the per-round miter pipeline in internal/atpg.)
func TestLearnedClausesSurviveScopes(t *testing.T) {
	inc := NewIncremental()
	const n = 8
	vars := make([]int, n)
	for i := range vars {
		vars[i] = inc.Base().NewVar()
	}
	// Permanent chain: v0 → v1 → ... → v7.
	for i := 0; i+1 < n; i++ {
		inc.Base().AddClause(Neg(vars[i]), Pos(vars[i+1]))
	}
	for i := 0; i+1 < n; i++ {
		sc := inc.Scope()
		sc.AddClause(Pos(vars[i]))       // head true
		sc.AddClause(Neg(vars[n-1]))     // tail false: contradiction
		if r := sc.Solve(); r != Unsat { // chain forces the tail
			t.Fatalf("scope %d: %v", i, r)
		}
		sc.Retire()
		free := inc.Scope()
		free.AddClause(Pos(vars[i]))
		if r := free.Solve(); r != Sat {
			t.Fatalf("sat scope %d: %v", i, r)
		}
		free.Retire()
	}
}

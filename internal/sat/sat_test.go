package sat

import (
	"math/rand"
	"testing"
)

func TestLitBasics(t *testing.T) {
	p, n := Pos(3), Neg(3)
	if p.Var() != 3 || n.Var() != 3 {
		t.Errorf("Var broken")
	}
	if p.Sign() || !n.Sign() {
		t.Errorf("Sign broken")
	}
	if p.Not() != n || n.Not() != p {
		t.Errorf("Not broken")
	}
	if p.String() != "v3" || n.String() != "!v3" {
		t.Errorf("String broken: %s %s", p, n)
	}
}

func TestTrivial(t *testing.T) {
	s := New()
	a := s.NewVar()
	if !s.AddClause(Pos(a)) {
		t.Fatal("unit clause rejected")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if !s.Value(a) {
		t.Errorf("a should be true")
	}
	// Adding the complementary unit makes it unsat.
	if s.AddClause(Neg(a)) {
		t.Errorf("contradictory unit should report false")
	}
	if got := s.Solve(); got != Unsat {
		t.Errorf("Solve = %v, want Unsat", got)
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	s := New()
	v := make([]int, 10)
	for i := range v {
		v[i] = s.NewVar()
	}
	// v0 -> v1 -> ... -> v9, assert v0, forbid v9: unsat.
	for i := 0; i+1 < len(v); i++ {
		s.AddClause(Neg(v[i]), Pos(v[i+1]))
	}
	s.AddClause(Pos(v[0]))
	s.AddClause(Neg(v[9]))
	if got := s.Solve(); got != Unsat {
		t.Errorf("chain contradiction: %v, want Unsat", got)
	}
}

func TestXorChainSat(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	// a xor b = c encoded in CNF.
	s.AddClause(Neg(a), Neg(b), Neg(c))
	s.AddClause(Pos(a), Pos(b), Neg(c))
	s.AddClause(Pos(a), Neg(b), Pos(c))
	s.AddClause(Neg(a), Pos(b), Pos(c))
	s.AddClause(Pos(c)) // force c = 1
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v", got)
	}
	if s.Value(a) == s.Value(b) {
		t.Errorf("model violates a xor b = 1: a=%v b=%v", s.Value(a), s.Value(b))
	}
}

// pigeonhole encodes PHP(n+1, n): n+1 pigeons in n holes, classic small
// UNSAT family that requires real conflict analysis.
func pigeonhole(s *Solver, pigeons, holes int) {
	v := make([][]int, pigeons)
	for p := range v {
		v[p] = make([]int, holes)
		for h := range v[p] {
			v[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = Pos(v[p][h])
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(Neg(v[p1][h]), Neg(v[p2][h]))
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := New()
		pigeonhole(s, n+1, n)
		if got := s.Solve(); got != Unsat {
			t.Errorf("PHP(%d,%d) = %v, want Unsat", n+1, n, got)
		}
	}
}

func TestPigeonholeSatWhenEnoughHoles(t *testing.T) {
	s := New()
	pigeonhole(s, 4, 4)
	if got := s.Solve(); got != Sat {
		t.Errorf("PHP(4,4) = %v, want Sat", got)
	}
}

func TestBudgetUnknown(t *testing.T) {
	s := New()
	pigeonhole(s, 9, 8) // hard enough to exceed a tiny budget
	s.SetBudget(5)
	if got := s.Solve(); got != Unknown {
		t.Errorf("budgeted solve = %v, want Unknown", got)
	}
	// Removing the budget must give the real answer.
	s.SetBudget(0)
	if got := s.Solve(); got != Unsat {
		t.Errorf("unbudgeted solve = %v, want Unsat", got)
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(Neg(a), Pos(b)) // a -> b
	if got := s.Solve(Pos(a), Neg(b)); got != Unsat {
		t.Errorf("assumptions a & !b with a->b: %v, want Unsat", got)
	}
	if got := s.Solve(Pos(a)); got != Sat {
		t.Fatalf("assumption a: %v, want Sat", got)
	}
	if !s.Value(b) {
		t.Errorf("b must be true when a is assumed")
	}
	// The solver must be reusable: contradictory assumptions do not poison
	// the clause database.
	if got := s.Solve(Neg(a)); got != Sat {
		t.Errorf("assumption !a: %v, want Sat", got)
	}
}

// TestRandom3SATAgainstBruteForce cross-checks the solver on random small
// formulas against exhaustive enumeration.
func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		nv := 4 + rng.Intn(6) // 4..9 vars
		nc := 3 + rng.Intn(30)
		type cl [3]int // positive: var+1, negative: -(var+1)
		clauses := make([]cl, nc)
		for i := range clauses {
			for k := 0; k < 3; k++ {
				v := rng.Intn(nv) + 1
				if rng.Intn(2) == 0 {
					v = -v
				}
				clauses[i][k] = v
			}
		}
		// Brute force.
		bruteSat := false
		for m := 0; m < 1<<uint(nv); m++ {
			ok := true
			for _, c := range clauses {
				cok := false
				for _, l := range c {
					v := l
					if v < 0 {
						v = -v
					}
					val := m>>uint(v-1)&1 == 1
					if (l > 0) == val {
						cok = true
						break
					}
				}
				if !cok {
					ok = false
					break
				}
			}
			if ok {
				bruteSat = true
				break
			}
		}
		// Solver.
		s := New()
		vars := make([]int, nv)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		for _, c := range clauses {
			lits := make([]Lit, 3)
			for k, l := range c {
				if l > 0 {
					lits[k] = Pos(vars[l-1])
				} else {
					lits[k] = Neg(vars[-l-1])
				}
			}
			s.AddClause(lits...)
		}
		got := s.Solve()
		want := Unsat
		if bruteSat {
			want = Sat
		}
		if got != want {
			t.Fatalf("trial %d: solver=%v brute=%v (formula %v)", trial, got, want, clauses)
		}
		// On Sat, verify the model actually satisfies the formula.
		if got == Sat {
			for _, c := range clauses {
				cok := false
				for _, l := range c {
					v := l
					if v < 0 {
						v = -v
					}
					if (l > 0) == s.Value(vars[v-1]) {
						cok = true
						break
					}
				}
				if !cok {
					t.Fatalf("trial %d: model does not satisfy clause %v", trial, c)
				}
			}
		}
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	if !s.AddClause(Pos(a), Neg(a)) {
		t.Errorf("tautology should be accepted (and dropped)")
	}
	if !s.AddClause(Pos(a), Pos(a), Pos(b)) {
		t.Errorf("duplicate literals should be accepted")
	}
	if got := s.Solve(); got != Sat {
		t.Errorf("Solve = %v", got)
	}
}

func TestStatisticsProgress(t *testing.T) {
	s := New()
	pigeonhole(s, 5, 4)
	s.Solve()
	if s.Conflicts == 0 || s.Decisions == 0 || s.Propagations == 0 {
		t.Errorf("statistics not collected: %d conflicts %d decisions %d props",
			s.Conflicts, s.Decisions, s.Propagations)
	}
}

package sat

// ClauseAdder is the minimal clause-emission interface: the one-shot
// Solver satisfies it directly, and an incremental Scope satisfies it by
// guarding every clause with its activation literal. CNF encoders target
// this interface so the same encoding serves both proving styles.
type ClauseAdder interface {
	NewVar() int
	AddClause(lits ...Lit) bool
}

var (
	_ ClauseAdder = (*Solver)(nil)
	_ ClauseAdder = (*Scope)(nil)
)

// Incremental layers assumption-scoped solving on one long-lived Solver.
// Clauses added through the solver itself (Base) are permanent; clauses
// added through a Scope are guarded by that scope's activation literal and
// only bind while solving that scope. Retiring a scope asserts the
// negated activation literal, permanently satisfying its clauses.
//
// The payoff over a fresh solver per query: permanent clauses are encoded
// and propagated once, and learned clauses survive across queries —
// a clause learned from permanent clauses alone constrains every later
// query, while one derived through a scope's clauses carries that scope's
// negated activation literal and silently deactivates with it.
type Incremental struct {
	s *Solver

	// ScopesOpened and ScopesRetired count Scope/Retire calls.
	ScopesOpened, ScopesRetired int
}

// NewIncremental returns an incremental context over a fresh solver.
func NewIncremental() *Incremental {
	return &Incremental{s: New()}
}

// Base returns the underlying solver; clauses added to it are permanent.
// Budget, context, and statistics accessors live there too.
func (inc *Incremental) Base() *Solver { return inc.s }

// Scope opens a new retirable clause scope.
func (inc *Incremental) Scope() *Scope {
	inc.ScopesOpened++
	return &Scope{inc: inc, act: inc.s.NewVar()}
}

// Scope is one activation-literal-guarded clause group.
type Scope struct {
	inc     *Incremental
	act     int
	retired bool
}

// NewVar allocates a variable. Variables are global to the solver; only
// clauses are scoped.
func (sc *Scope) NewVar() int { return sc.inc.s.NewVar() }

// AddClause adds lits guarded by the scope's activation literal, so the
// clause binds only while solving this scope. It returns false if the
// solver became trivially unsatisfiable.
func (sc *Scope) AddClause(lits ...Lit) bool {
	if sc.retired {
		panic("sat: AddClause on a retired scope")
	}
	guarded := make([]Lit, 0, len(lits)+1)
	guarded = append(guarded, lits...)
	guarded = append(guarded, Neg(sc.act))
	return sc.inc.s.AddClause(guarded...)
}

// Solve determines satisfiability of the permanent clauses plus this
// scope's clauses, under the extra assumptions.
func (sc *Scope) Solve(assumptions ...Lit) Result {
	if sc.retired {
		panic("sat: Solve on a retired scope")
	}
	asm := make([]Lit, 0, len(assumptions)+1)
	asm = append(asm, Pos(sc.act))
	asm = append(asm, assumptions...)
	return sc.inc.s.Solve(asm...)
}

// Retire permanently deactivates the scope's clauses. Learned clauses
// that mention the activation literal are satisfied from here on; those
// that never depended on this scope keep constraining later queries.
// Retire is idempotent.
func (sc *Scope) Retire() {
	if sc.retired {
		return
	}
	sc.retired = true
	sc.inc.ScopesRetired++
	sc.inc.s.AddClause(Neg(sc.act))
}

// Customlib: define your own cell library in genlib format, synthesize a
// design onto it with both mapper objectives, and optimize the result with
// POWDER.
//
// Run with: go run ./examples/customlib
package main

import (
	"fmt"
	"log"
	"strings"

	"powder/internal/cellib"
	"powder/internal/core"
	"powder/internal/logic"
	"powder/internal/synth"
	"powder/internal/transform"
)

// A deliberately small library: inverter, NAND2, NOR2, XOR2 only.
// PIN fields: name phase input-load max-load rise-block rise-fanout
// fall-block fall-fanout.
const myLib = `
GATE inv1  10 O=!a;      PIN * INV    1.0 999 0.3 0.10 0.3 0.10
GATE nand2 16 O=!(a*b);  PIN * INV    1.0 999 0.5 0.12 0.5 0.12
GATE nor2  16 O=!(a+b);  PIN * INV    1.0 999 0.6 0.14 0.6 0.14
GATE xor2  32 O=a^b;     PIN * UNKNOWN 1.8 999 1.1 0.16 1.1 0.16
`

func main() {
	lib, err := cellib.ParseGenlib(strings.NewReader(myLib))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("library %q with %d cells\n", lib.Name, lib.Len())

	// A 4-bit carry-lookahead-ish design: generate/propagate + sum bits.
	d := synth.NewDesign("cla4",
		"a0", "a1", "a2", "a3", "b0", "b1", "b2", "b3", "cin")
	a := func(i int) *logic.Expr { return logic.Var(i) }
	b := func(i int) *logic.Expr { return logic.Var(4 + i) }
	carry := logic.Var(8)
	for i := 0; i < 4; i++ {
		d.AddOutput(fmt.Sprintf("s%d", i), logic.Xor(a(i), b(i), carry))
		carry = logic.Or(logic.And(a(i), b(i)), logic.And(carry, logic.Xor(a(i), b(i))))
	}
	d.AddOutput("cout", carry)

	for _, mode := range []struct {
		name string
		m    synth.CostMode
	}{{"area-cost mapping", synth.CostArea}, {"power-cost mapping", synth.CostPower}} {
		nl, err := synth.Compile(d, lib, synth.Options{Mode: mode.m})
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Optimize(nl, core.Options{
			DelayFactor: 1.5, // allow 50% delay increase for extra power savings
			Transform:   transform.Config{AllowInverted: true},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s:\n", mode.name)
		fmt.Printf("  mapped:    power %8.3f  area %5.0f  delay %6.2f  gates %d\n",
			res.Initial.Power, res.Initial.Area, res.InitialDelay, res.Initial.Gates)
		fmt.Printf("  optimized: power %8.3f  area %5.0f  delay %6.2f  gates %d  (-%.1f%% power)\n",
			res.Final.Power, res.Final.Area, res.FinalDelay, res.Final.Gates,
			res.PowerReductionPct())
	}
}

// ATPG: use the test-generation engine directly — enumerate stuck-at
// faults, grade the random-vector coverage with the fault simulator, run
// PODEM on the undetected remainder, and report which faults are provably
// redundant (the don't-care slack POWDER's substitutions exploit).
//
// Run with: go run ./examples/atpg
package main

import (
	"fmt"
	"log"

	"powder/internal/atpg"
	"powder/internal/cellib"
	"powder/internal/netlist"
	"powder/internal/sim"
)

func main() {
	lib := cellib.Lib2()

	// A circuit with classic redundancy: y = a + a*b (the AND is dead
	// logic) next to a clean XOR cone.
	nl := netlist.New("demo", lib)
	a, _ := nl.AddInput("a")
	b, _ := nl.AddInput("b")
	c, _ := nl.AddInput("c")
	g, _ := nl.AddGate("g", lib.Cell("and2"), []netlist.NodeID{a, b})
	y, _ := nl.AddGate("y", lib.Cell("or2"), []netlist.NodeID{a, g})
	x, _ := nl.AddGate("x", lib.Cell("xor2"), []netlist.NodeID{y, c})
	if err := nl.AddOutput("x", x); err != nil {
		log.Fatal(err)
	}

	// 256 random sample vectors.
	s := sim.New(nl, 4)
	s.SetInputsRandom(1, nil)
	s.Run()

	faults := atpg.AllFaults(nl)
	fs := atpg.NewFaultSim(s)
	detected, undetected := fs.Coverage(faults)
	fmt.Printf("fault list: %d faults, %d detected by 256 random vectors\n",
		len(faults), detected)

	for _, f := range undetected {
		vec, outcome := atpg.GenerateTest(nl, f, 0)
		switch outcome {
		case atpg.TestFound:
			fmt.Printf("  %-12v PODEM test: %v\n", f, vec)
		case atpg.Untestable:
			fmt.Printf("  %-12v REDUNDANT (no test exists)\n", f)
		default:
			fmt.Printf("  %-12v aborted\n", f)
		}
	}

	// The same engine answers substitution permissibility: rewiring y's
	// second pin from g to a is permissible exactly because g's faults are
	// unobservable.
	checker := atpg.NewChecker(nl)
	verdict := checker.CheckBranch(y, 1, atpg.Source{B: a, C: netlist.InvalidNode})
	fmt.Printf("\nIS2: rewire y.pin1 (g) <- a: %v\n", verdict)
	if verdict == atpg.Permissible {
		fmt.Println("   ...which is how POWDER would delete the redundant AND gate.")
	}
}

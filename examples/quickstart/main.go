// Quickstart: build the paper's Figure 2 circuit by hand, estimate its
// power, let POWDER rewire it, and print what changed.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"powder/internal/blif"
	"powder/internal/cellib"
	"powder/internal/core"
	"powder/internal/netlist"
	"powder/internal/power"
	"powder/internal/transform"
)

func main() {
	// The built-in library is modelled on MCNC lib2.genlib: AND/XOR cells
	// with per-pin capacitances and linear-delay parameters.
	lib := cellib.Lib2()

	// Figure 2, circuit A: e = a*b, d = a^c, f = d*b; outputs f and e.
	nl := netlist.New("fig2", lib)
	a, _ := nl.AddInput("a")
	b, _ := nl.AddInput("b")
	c, _ := nl.AddInput("c")
	e, err := nl.AddGate("e", lib.Cell("and2"), []netlist.NodeID{a, b})
	if err != nil {
		log.Fatal(err)
	}
	d, _ := nl.AddGate("d", lib.Cell("xor2"), []netlist.NodeID{a, c})
	f, _ := nl.AddGate("f", lib.Cell("and2"), []netlist.NodeID{d, b})
	if err := nl.AddOutput("f", f); err != nil {
		log.Fatal(err)
	}
	if err := nl.AddOutput("e", e); err != nil {
		log.Fatal(err)
	}

	// Estimate power: sum over stems of C(i)*E(i), exactly Eq. 1 of the
	// paper up to the constant 1/2 Vdd^2 f.
	pm := power.Estimate(nl, power.Options{})
	fmt.Printf("initial:  power %.3f, area %.0f, %d gates\n",
		pm.Total(), nl.Area(), nl.GateCount())

	// POWDER: permissible substitutions with positive power gain.
	res, err := core.Optimize(nl, core.Options{
		Transform: transform.Config{AllowInverted: true},
		Trace:     func(s string) { fmt.Println("  ", s) },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized: power %.3f, area %.0f, %d gates (%.1f%% power reduction)\n",
		res.Final.Power, res.Final.Area, res.Final.Gates, res.PowerReductionPct())

	// The optimized netlist is ordinary mapped BLIF.
	fmt.Println("\nresulting netlist:")
	if err := blif.Write(os.Stdout, nl); err != nil {
		log.Fatal(err)
	}
}

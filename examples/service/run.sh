#!/bin/sh
# Demonstrates the powderd HTTP service end to end: start a daemon,
# submit two circuits concurrently, stream the progress events of one,
# fetch both optimized netlists, and drain the server cleanly.
#
# Usage: ./examples/service/run.sh   (from the repository root)
set -eu

ADDR=127.0.0.1:8844
BASE=http://$ADDR
TMP=$(mktemp -d)
trap 'kill $DAEMON 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

echo "== building and starting powderd on $ADDR"
go build -o "$TMP/powderd" ./cmd/powderd
"$TMP/powderd" -addr "$ADDR" -workers 2 &
DAEMON=$!

# Wait for the daemon to come up.
for _ in $(seq 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null || { echo "powderd did not start" >&2; exit 1; }

echo "== submitting fig2.blif and maj3.blif concurrently"
J1=$(curl -sf -X POST --data-binary @examples/circuits/fig2.blif \
    "$BASE/v1/jobs?verify=true" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
J2=$(curl -sf -X POST --data-binary @examples/circuits/maj3.blif \
    "$BASE/v1/jobs?verify=true&delay-limit=0" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
echo "   fig2 -> $J1, maj3 -> $J2"

echo "== streaming events of $J1 (NDJSON)"
curl -sN --max-time 10 "$BASE/v1/jobs/$J1/events" | while read -r line; do
    echo "   $line"
    case $line in *job-finished*) break ;; esac
done

echo "== waiting for both jobs"
for J in "$J1" "$J2"; do
    for _ in $(seq 100); do
        S=$(curl -sf "$BASE/v1/jobs/$J" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
        case $S in completed|failed|cancelled) break ;; esac
        sleep 0.1
    done
    echo "   $J: $S"
done

echo "== job status of $J1"
curl -sf "$BASE/v1/jobs/$J1"; echo

echo "== optimized netlists"
curl -sf "$BASE/v1/jobs/$J1/result.blif" | tee "$TMP/fig2.opt.blif" | sed 's/^/   /'
curl -sf "$BASE/v1/jobs/$J2/result.blif" > "$TMP/maj3.opt.blif"
echo "   (maj3 written to $TMP/maj3.opt.blif)"

echo "== final metrics"
curl -sf "$BASE/metrics" | grep -E 'service\.' | sed 's/^/   /'

echo "== draining powderd (SIGTERM)"
kill -TERM $DAEMON
wait $DAEMON 2>/dev/null || true
echo "== done"

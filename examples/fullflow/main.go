// Fullflow: the complete post-mapping low-power flow on one benchmark —
// POWDER structural transformations, then gate re-sizing to repair the
// delay, with glitch-aware power measured at every stage (the paper's
// zero-delay model deliberately ignores glitches; this example quantifies
// them).
//
// Run with: go run ./examples/fullflow [circuit]
package main

import (
	"fmt"
	"log"
	"os"

	"powder/internal/cellib"
	"powder/internal/circuits"
	"powder/internal/core"
	"powder/internal/power"
	"powder/internal/resize"
	"powder/internal/sta"
	"powder/internal/synth"
	"powder/internal/transform"
)

func report(stage string, nl interface {
	Area() float64
	GateCount() int
}, zero, timed, delay float64) {
	fmt.Printf("%-22s power %8.3f  (timed %8.3f, glitch share %4.1f%%)  area %8.0f  delay %6.2f  gates %4d\n",
		stage, zero, timed, 100*(timed-zero)/timed, nl.Area(), delay, nl.GateCount())
}

func main() {
	name := "ttt2"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	spec, err := circuits.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	lib := cellib.Lib2()
	nl, err := synth.Compile(spec.Build(), lib, synth.Options{Mode: synth.CostPower})
	if err != nil {
		log.Fatal(err)
	}

	measure := func(stage string) {
		pm := power.Estimate(nl, power.Options{})
		g := power.GlitchEstimate(nl, 512, 1, nil)
		report(stage, nl, pm.Total(), g.Timed, sta.New(nl, 0).Delay())
	}

	initialDelay := sta.New(nl, 0).Delay()
	measure("mapped (initial)")

	// Unconstrained POWDER: maximum power reduction, delay may grow.
	res, err := core.Optimize(nl, core.Options{
		Transform: transform.Config{AllowInverted: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  -> POWDER applied %d substitutions (%.1f%% power reduction)\n",
		res.Applied, res.PowerReductionPct())
	measure("after POWDER")

	// Re-sizing: repair the delay back to the initial constraint, then
	// recover power in the remaining slack.
	rr, err := resize.Optimize(nl, resize.Options{DelayConstraint: initialDelay})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  -> %s\n", rr)
	measure("after re-sizing")

	if d := sta.New(nl, 0).Delay(); d <= initialDelay+1e-9 {
		fmt.Printf("\ninitial delay %.2f restored (now %.2f) while keeping the power savings\n",
			initialDelay, d)
	} else {
		fmt.Printf("\ndelay %.2f still above the initial %.2f — the library's drive range is exhausted\n",
			d, initialDelay)
	}
}

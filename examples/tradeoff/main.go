// Tradeoff: reproduce the paper's Figure 6 idea on a single benchmark
// circuit — sweep the allowed delay increase and watch the power drop and
// saturate.
//
// Run with: go run ./examples/tradeoff [circuit]
package main

import (
	"fmt"
	"log"
	"os"

	"powder/internal/cellib"
	"powder/internal/circuits"
	"powder/internal/core"
	"powder/internal/synth"
	"powder/internal/transform"
)

func main() {
	name := "misex3"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	spec, err := circuits.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	lib := cellib.Lib2()

	fmt.Printf("power-delay trade-off for %s\n", name)
	fmt.Printf("%12s %12s %12s %12s %6s\n", "constraint", "power", "rel power", "rel delay", "subs")
	for _, pct := range []int{0, 10, 20, 30, 50, 100, 200} {
		// Each run starts from a fresh copy of the initial mapped circuit.
		nl, err := synth.Compile(spec.Build(), lib, synth.Options{Mode: synth.CostPower})
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Optimize(nl, core.Options{
			DelayFactor: 1 + float64(pct)/100,
			Transform:   transform.Config{AllowInverted: true},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%11d%% %12.3f %12.3f %12.3f %6d\n",
			pct, res.Final.Power,
			res.Final.Power/res.Initial.Power,
			res.FinalDelay/res.InitialDelay,
			res.Applied)
	}
	fmt.Println("\nThe curve drops steeply for small delay allowances and")
	fmt.Println("saturates: beyond a point, extra slack buys no more power.")
}

// Package bench holds the benchmark harness of the reproduction: one
// testing.B benchmark per paper table/figure (running representative
// subsets; `go run ./cmd/powbench -all` regenerates the full tables), plus
// ablation benches for the design choices called out in DESIGN.md and
// micro-benchmarks of the hot kernels.
package bench

import (
	"testing"

	"powder/internal/atpg"
	"powder/internal/cellib"
	"powder/internal/circuits"
	"powder/internal/core"
	"powder/internal/expt"
	"powder/internal/netlist"
	"powder/internal/power"
	"powder/internal/redundancy"
	"powder/internal/resize"
	"powder/internal/sim"
	"powder/internal/synth"
	"powder/internal/transform"
)

// compileCircuit builds the initial mapped netlist of a named benchmark.
func compileCircuit(b *testing.B, name string) *netlist.Netlist {
	b.Helper()
	spec, err := circuits.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	nl, err := synth.Compile(spec.Build(), cellib.Lib2(), synth.Options{Mode: synth.CostPower})
	if err != nil {
		b.Fatal(err)
	}
	return nl
}

func specsOf(b *testing.B, names ...string) []circuits.Spec {
	b.Helper()
	var out []circuits.Spec
	for _, n := range names {
		s, err := circuits.ByName(n)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

// --- Table 1: per-circuit POWDER runs (unconstrained and constrained) ---

func benchTable1Row(b *testing.B, name string) {
	base := compileCircuit(b, name)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nl := base.Clone()
		res, err := core.Optimize(nl, core.Options{
			Transform: transform.Config{AllowInverted: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		nlC := base.Clone()
		resC, err := core.Optimize(nlC, core.Options{
			DelayFactor: 1.0,
			Transform:   transform.Config{AllowInverted: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.PowerReductionPct(), "red%")
			b.ReportMetric(resC.PowerReductionPct(), "constr_red%")
		}
	}
}

func BenchmarkTable1_clip(b *testing.B)   { benchTable1Row(b, "clip") }
func BenchmarkTable1_rd84(b *testing.B)   { benchTable1Row(b, "rd84") }
func BenchmarkTable1_t481(b *testing.B)   { benchTable1Row(b, "t481") }
func BenchmarkTable1_9sym(b *testing.B)   { benchTable1Row(b, "9sym") }
func BenchmarkTable1_misex3(b *testing.B) { benchTable1Row(b, "misex3") }
func BenchmarkTable1_ttt2(b *testing.B)   { benchTable1Row(b, "ttt2") }

// BenchmarkTable1Suite runs the whole Table 1 pipeline (both optimization
// modes, totals, per-class stats) on a representative subset.
func BenchmarkTable1Suite(b *testing.B) {
	specs := specsOf(b, "clip", "rd84", "t481", "frg1", "c8")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		suite, err := expt.RunSuite(specs, expt.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(suite.FreeRedPct(), "red%")
		}
	}
}

// --- Table 2: per-class contribution accounting ---

func BenchmarkTable2(b *testing.B) {
	specs := specsOf(b, "t481", "ttt2", "misex3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		suite, err := expt.RunSuite(specs, expt.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			total := 0.0
			for _, cs := range suite.Class {
				total += cs.PowerGain
			}
			if total > 0 {
				b.ReportMetric(100*suite.Class[transform.OS2].PowerGain/total, "OS2%")
				b.ReportMetric(100*suite.Class[transform.IS2].PowerGain/total, "IS2%")
			}
		}
	}
}

// --- Figure 6: power-delay trade-off sweep ---

func BenchmarkFigure6(b *testing.B) {
	specs := specsOf(b, "clip", "t481", "rd84")
	pcts := []int{0, 30, 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := expt.RunTradeoff(specs, pcts, expt.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(points[0].RelPower, "relP@0%")
			b.ReportMetric(points[len(points)-1].RelPower, "relP@100%")
		}
	}
}

// --- Ablations (DESIGN.md section 5) ---

// BenchmarkAblationPreselect vs NoPreselect measures the CPU saving of the
// paper's PG_A+PG_B pre-selection before the expensive PG_C reestimation.
func BenchmarkAblationPreselect(b *testing.B) {
	base := compileCircuit(b, "misex3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(base.Clone(), core.Options{
			Transform: transform.Config{AllowInverted: true},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationNoPreselect(b *testing.B) {
	base := compileCircuit(b, "misex3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(base.Clone(), core.Options{
			DisablePreselect: true,
			Transform:        transform.Config{AllowInverted: true},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRepeat1/20 measures the effect of the paper's `repeat`
// parameter (candidate-harvest reuse).
func BenchmarkAblationRepeat1(b *testing.B) {
	base := compileCircuit(b, "ttt2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(base.Clone(), core.Options{
			Repeat:    1,
			Transform: transform.Config{AllowInverted: true},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRepeat20(b *testing.B) {
	base := compileCircuit(b, "ttt2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(base.Clone(), core.Options{
			Repeat:    20,
			Transform: transform.Config{AllowInverted: true},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMinGain implements the paper's Section 4.2 suggestion:
// terminate once per-substitution gains fall below a threshold, trading a
// little quality for CPU time. Compare against the default run.
func BenchmarkAblationMinGainThreshold(b *testing.B) {
	base := compileCircuit(b, "spla")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Optimize(base.Clone(), core.Options{
			MinGain:   0.05, // stop early: ignore sub-0.05 gains
			Transform: transform.Config{AllowInverted: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.PowerReductionPct(), "red%")
		}
	}
}

// BenchmarkResize measures the gate re-sizing pass (flow extension).
func BenchmarkResize(b *testing.B) {
	base := compileCircuit(b, "ttt2")
	// Create resize opportunity: let POWDER stretch the delay first.
	if _, err := core.Optimize(base, core.Options{
		Transform: transform.Config{AllowInverted: true},
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := resize.Optimize(base.Clone(), resize.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGlitchEstimate measures the timed (glitch-aware) power
// estimator extension.
func BenchmarkGlitchEstimate(b *testing.B) {
	nl := compileCircuit(b, "ttt2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := power.GlitchEstimate(nl, 128, 1, nil)
		if i == 0 {
			b.ReportMetric(100*rep.GlitchFraction(), "glitch%")
		}
	}
}

// BenchmarkEquivalenceCheck measures the full-circuit SAT verification.
func BenchmarkEquivalenceCheck(b *testing.B) {
	nl := compileCircuit(b, "misex3")
	opt := nl.Clone()
	if _, err := core.Optimize(opt, core.Options{
		Transform: transform.Config{AllowInverted: true},
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := atpg.Equivalent(nl, opt, 0)
		if err != nil {
			b.Fatal(err)
		}
		if res.Verdict != atpg.Permissible {
			b.Fatal("verification failed")
		}
	}
}

// BenchmarkBaselineRedundancyRemoval measures the classic ATPG-based
// redundancy removal (the paper's reference [1]) as a baseline: how much
// power does plain redundancy removal recover compared with POWDER?
func BenchmarkBaselineRedundancyRemoval(b *testing.B) {
	base := compileCircuit(b, "spla")
	pmBase := power.Estimate(base, power.Options{})
	initial := pmBase.Total()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nl := base.Clone()
		if _, err := redundancy.Remove(nl, redundancy.Options{}); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			pm := power.Estimate(nl, power.Options{})
			b.ReportMetric(100*(initial-pm.Total())/initial, "red%")
		}
	}
}

// --- Micro-benchmarks of the hot kernels ---

func BenchmarkKernelSimulation(b *testing.B) {
	nl := compileCircuit(b, "spla")
	s := sim.New(nl, 64)
	s.SetInputsRandom(1, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run()
	}
}

func BenchmarkKernelObservability(b *testing.B) {
	nl := compileCircuit(b, "ttt2")
	s := sim.New(nl, 64)
	s.SetInputsRandom(1, nil)
	s.Run()
	targets := nl.TopoOrder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.StemObservability(targets[i%len(targets)])
	}
}

func BenchmarkKernelCandidateGen(b *testing.B) {
	nl := compileCircuit(b, "ttt2")
	pm := power.Estimate(nl, power.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands := transform.Generate(nl, pm, transform.Config{AllowInverted: true})
		if len(cands) == 0 {
			b.Fatal("no candidates")
		}
	}
}

func BenchmarkKernelPermissibilityCheck(b *testing.B) {
	nl := compileCircuit(b, "ttt2")
	pm := power.Estimate(nl, power.Options{})
	cands := transform.Generate(nl, pm, transform.Config{AllowInverted: true})
	if len(cands) == 0 {
		b.Fatal("no candidates")
	}
	checker := atpg.NewChecker(nl)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := cands[i%len(cands)]
		if s.IsBranchSub() {
			checker.CheckBranch(s.G, s.Pin, s.Src)
		} else {
			checker.CheckStem(s.A, s.Src)
		}
	}
}

func BenchmarkKernelPODEM(b *testing.B) {
	nl := compileCircuit(b, "rd84")
	faults := atpg.AllFaults(nl)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := faults[i%len(faults)]
		atpg.GenerateTest(nl, f, 0)
	}
}

func BenchmarkKernelFaultSim(b *testing.B) {
	nl := compileCircuit(b, "rd84")
	s := sim.New(nl, 16)
	s.SetInputsRandom(1, nil)
	s.Run()
	fs := atpg.NewFaultSim(s)
	faults := atpg.AllFaults(nl)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.Detects(faults[i%len(faults)])
	}
}

func BenchmarkKernelTechMapping(b *testing.B) {
	spec, err := circuits.ByName("apex1")
	if err != nil {
		b.Fatal(err)
	}
	d := spec.Build()
	lib := cellib.Lib2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Compile(d, lib, synth.Options{Mode: synth.CostPower}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelPowerEstimate(b *testing.B) {
	nl := compileCircuit(b, "spla")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pm := power.Estimate(nl, power.Options{})
		_ = pm.Total()
	}
}

func BenchmarkKernelGainAnalysis(b *testing.B) {
	nl := compileCircuit(b, "ttt2")
	pm := power.Estimate(nl, power.Options{})
	an := transform.NewAnalyzer(nl, pm)
	cands := transform.Generate(nl, pm, transform.Config{AllowInverted: true})
	if len(cands) == 0 {
		b.Fatal("no candidates")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := cands[i%len(cands)]
		an.AnalyzeAB(s)
		an.AnalyzeC(s)
	}
}

#!/usr/bin/env bash
# Crash-recovery end-to-end test for powderd's durability layer.
#
# 1. A baseline daemon optimizes the "bw" benchmark uninterrupted.
# 2. A second daemon (fresh store) gets the same submission and is
#    SIGKILLed while the job is running. Restarting it over the same
#    -store-dir must re-enqueue the interrupted job and produce a
#    result byte-identical to the baseline.
# 3. The cache path is asserted on the restarted daemon: powder
#    -server resubmitting the same circuit must be served from the
#    content-addressed cache (cache-hit metric, completed on arrival).
# 4. A corrupted journal tail must degrade to a logged truncation on
#    the next restart, never a startup failure.
#
# Usage: scripts/crash_recovery_e2e.sh [powderd-binary] [powder-binary]
# Run from the repository root (go run resolves the module).
set -euo pipefail

POWDERD=${1:-/tmp/powderd}
POWDER=${2:-/tmp/powder}
WORK=$(mktemp -d)
ADDR_A=127.0.0.1:18871
ADDR_B=127.0.0.1:18872
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

wait_healthy() {
  for _ in $(seq 1 50); do
    curl -fsS "http://$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  echo "daemon at $1 never became healthy" >&2
  return 1
}

job_state() {
  curl -fsS "http://$1/v1/jobs/$2" | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])'
}

submit_job() {
  curl -fsS -X POST --data-binary @"$WORK/bw.blif" "http://$1/v1/jobs" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])'
}

# The initial mapped BLIF of the bw benchmark: both daemons must see
# byte-identical submissions for the byte-identical-result assertion.
go run scripts/emit_mapped.go bw > "$WORK/bw.blif"

# --- 1. uninterrupted baseline -------------------------------------
"$POWDERD" -addr "$ADDR_A" -workers 1 -store-dir "$WORK/storeA" &
PD_A=$!
wait_healthy "$ADDR_A"
JOB_A=$(submit_job "$ADDR_A")
for _ in $(seq 1 200); do
  [ "$(job_state "$ADDR_A" "$JOB_A")" = completed ] && break
  sleep 0.2
done
[ "$(job_state "$ADDR_A" "$JOB_A")" = completed ]
curl -fsS "http://$ADDR_A/v1/jobs/$JOB_A/result.blif" -o "$WORK/baseline.blif"
kill "$PD_A"; wait "$PD_A" 2>/dev/null || true
echo "baseline run completed ($JOB_A)"

# --- 2. kill -9 mid-job, restart, byte-identical result ------------
"$POWDERD" -addr "$ADDR_B" -workers 1 -store-dir "$WORK/storeB" &
PD_B=$!
wait_healthy "$ADDR_B"
JOB=$(submit_job "$ADDR_B")
for _ in $(seq 1 100); do
  [ "$(job_state "$ADDR_B" "$JOB")" = running ] && break
  sleep 0.05
done
[ "$(job_state "$ADDR_B" "$JOB")" = running ] || { echo "job never started" >&2; exit 1; }
kill -9 "$PD_B"; wait "$PD_B" 2>/dev/null || true
echo "killed powderd mid-job ($JOB running)"

"$POWDERD" -addr "$ADDR_B" -workers 1 -store-dir "$WORK/storeB" >"$WORK/restart.log" 2>&1 &
PD_B=$!
wait_healthy "$ADDR_B"
grep -q '1 interrupted jobs re-enqueued' "$WORK/restart.log"
for _ in $(seq 1 200); do
  STATE=$(job_state "$ADDR_B" "$JOB")
  [ "$STATE" = completed ] && break
  [ "$STATE" = failed ] && { curl -fsS "http://$ADDR_B/v1/jobs/$JOB" >&2; exit 1; }
  sleep 0.2
done
[ "$STATE" = completed ]
curl -fsS "http://$ADDR_B/v1/jobs/$JOB/result.blif" -o "$WORK/recovered.blif"
cmp "$WORK/baseline.blif" "$WORK/recovered.blif"
echo "recovered result is byte-identical to the uninterrupted run"

# --- 3. duplicate submission served from the cache -----------------
# powder -server compiles the same circuit to the same structure, so
# the CLI path must hit the cache the curl submission populated.
"$POWDER" -server "http://$ADDR_B" -circuit bw -out "$WORK/dup.blif" >"$WORK/dup.out" 2>&1
grep -q 'cached: result served' "$WORK/dup.out"
cmp "$WORK/baseline.blif" "$WORK/dup.blif"
curl -fsS "http://$ADDR_B/metrics" | grep '^powder_store_cache_hits_total' | grep -qv ' 0$'
echo "duplicate submission served from the content-addressed cache"
kill "$PD_B"; wait "$PD_B" 2>/dev/null || true

# --- 4. corrupted journal tail degrades gracefully -----------------
printf 'garbage-that-is-not-a-frame' >> "$WORK/storeB/journal.wal"
"$POWDERD" -addr "$ADDR_B" -workers 1 -store-dir "$WORK/storeB" >"$WORK/corrupt.log" 2>&1 &
PD_B=$!
wait_healthy "$ADDR_B"
curl -fsS "http://$ADDR_B/metrics" | grep '^powder_store_wal_truncations_total' | grep -qv ' 0$'
curl -fsS "http://$ADDR_B/healthz" | python3 -c '
import json, sys
h = json.load(sys.stdin)
assert h["status"] == "ok" and h["store"] == "ok", h
'
kill "$PD_B"; wait "$PD_B" 2>/dev/null || true
echo "corrupted journal tail truncated on replay; daemon stayed up"
echo "crash-recovery e2e: PASS"

//go:build ignore

// cross_eval estimates a mapped BLIF netlist's power under a given
// activity model without optimizing it. With no dump the uniform
// assumption (p = 0.5 everywhere, independence toggles) is used; with a
// VCD or SAIF dump the matched inputs drive the probabilities and pin
// the measured transition densities — the same binding powder -activity
// applies before a run. EXPERIMENTS.md uses it to cross-evaluate the
// uniform-optimized and workload-optimized netlists under both models.
//
// Usage: go run scripts/cross_eval.go mapped.blif [activity.vcd|.saif]
package main

import (
	"fmt"
	"os"

	"powder/internal/activity"
	"powder/internal/blif"
	"powder/internal/cellib"
	"powder/internal/power"
)

func main() {
	if len(os.Args) < 2 || len(os.Args) > 3 {
		fmt.Fprintln(os.Stderr, "usage: go run scripts/cross_eval.go mapped.blif [activity.vcd|.saif]")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	model, err := blif.ReadModel(f, cellib.Lib2())
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	nl := model.Netlist

	popts := power.Options{}
	label := "uniform (p=0.5, independence toggles)"
	if len(os.Args) == 3 {
		af, err := os.Open(os.Args[2])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		prof, err := activity.Read(af)
		af.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		names := make([]string, 0, len(nl.Inputs()))
		for _, id := range nl.Inputs() {
			names = append(names, nl.Node(id).Name())
		}
		b, err := prof.Bind(names)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		popts.InputProbs = b.Probs
		popts.InputToggles = b.Toggles
		label = fmt.Sprintf("%s sha256:%.12s %s", prof.Source, prof.Digest(), b.Coverage())
	}
	m := power.Estimate(nl, popts)
	fmt.Printf("%s  model: %s\n", os.Args[1], label)
	fmt.Printf("power %.3f\n", m.Total())
}

//go:build ignore

// emit_mapped writes a built-in benchmark circuit's *initial*
// technology-mapped BLIF (power-aware mapping against the built-in
// lib2, no optimization) to stdout — the exact submission body powder
// -server sends. The crash-recovery e2e script uses it so the baseline
// and crash runs post byte-identical inputs.
//
// Usage: go run scripts/emit_mapped.go <circuit-name>
package main

import (
	"fmt"
	"os"

	"powder/internal/blif"
	"powder/internal/cellib"
	"powder/internal/circuits"
	"powder/internal/synth"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: go run scripts/emit_mapped.go <circuit-name>")
		os.Exit(2)
	}
	spec, err := circuits.ByName(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	nl, err := synth.Compile(spec.Build(), cellib.Lib2(), synth.Options{Mode: synth.CostPower})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	model := &blif.Model{Netlist: nl, NumInputs: len(nl.Inputs()), NumOutputs: len(nl.Outputs())}
	if err := blif.WriteModel(os.Stdout, model); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

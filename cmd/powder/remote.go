package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/url"
	"os"
	"strconv"
	"time"

	"powder/internal/client"
	"powder/internal/obs/trace"
	"powder/internal/service"
)

// runRemote is powder's -server mode: instead of optimizing locally,
// the circuit is submitted to a powderd daemon, waited on, and the
// result (summary, optimized BLIF, ledger) is fetched back. Duplicate
// submissions are answered from the daemon's result cache; -no-cache
// forces a fresh run. Transient rejections (429 backpressure, daemon
// restarts) are retried with backoff by the client.
//
// With -trace-perfetto the run records the client half of the exchange
// — a root "client" span plus one span per HTTP attempt, retries
// included — and stitches it into the daemon's job trace: the
// submission carries the client's trace ID in X-Powder-Trace (forcing
// tracing server-side), the client spans are uploaded after completion,
// and the fetched Perfetto export reads client → job → queue → run →
// engine as one connected forest.
func runRemote(ctx context.Context, cfg config, body []byte, stdout, stderr io.Writer) error {
	if cfg.delayAbs != 0 {
		return fmt.Errorf("-delay (absolute) is not supported with -server; use -delay-factor")
	}
	var (
		tracer   *trace.Tracer
		rootSpan *trace.Span
	)
	if cfg.tracePerfetto != "" {
		// Base keeps client span IDs disjoint from the daemon's without
		// cross-process coordination.
		tracer = trace.New(fmt.Sprintf("powder-client-%x", time.Now().UnixNano()),
			trace.Options{Base: client.SpanIDBase})
		ctx = trace.NewContext(ctx, tracer)
		ctx, rootSpan = trace.StartSpan(ctx, "client")
	}
	q := url.Values{}
	if cfg.timeout > 0 {
		q.Set("timeout", cfg.timeout.String())
	}
	if cfg.delayFactor > 0 {
		// The API takes a percentage over the initial delay; -delay-factor
		// is a multiple of it.
		q.Set("delay-limit", strconv.FormatFloat((cfg.delayFactor-1)*100, 'g', -1, 64))
	}
	if cfg.maxSubs > 0 {
		q.Set("max-subs", strconv.Itoa(cfg.maxSubs))
	}
	if cfg.verify {
		q.Set("verify", "1")
	}
	if cfg.noCache {
		q.Set("no-cache", "1")
	}
	if cfg.probsPath != "" {
		pb, err := os.ReadFile(cfg.probsPath)
		if err != nil {
			return err
		}
		// The query form is comma-separated name=p entries.
		q.Set("probs", string(bytes.Join(bytes.Fields(pb), []byte(","))))
	}

	c := client.New(cfg.server, client.Options{})
	var st service.Status
	var err error
	if cfg.activityPath != "" {
		if cfg.probsPath != "" {
			return fmt.Errorf("use either -probs or -activity, not both (the dump already carries input probabilities)")
		}
		if cfg.activityClock != 0 {
			return fmt.Errorf("-activity-clock is not supported with -server; renormalize the dump locally first")
		}
		dump, rerr := os.ReadFile(cfg.activityPath)
		if rerr != nil {
			return rerr
		}
		st, err = c.SubmitActivity(ctx, body, dump, q)
	} else {
		st, err = c.Submit(ctx, body, q)
	}
	if err != nil {
		return err
	}
	if st.Cached {
		fmt.Fprintf(stderr, "job %s: served from the result cache\n", st.ID)
	} else {
		fmt.Fprintf(stderr, "job %s: submitted to %s (state %s)\n", st.ID, cfg.server, st.State)
	}
	fin, err := c.Wait(ctx, st.ID, 250*time.Millisecond)
	if err != nil {
		return err
	}
	if fin.Error != "" {
		return fmt.Errorf("job %s %s: %s", fin.ID, fin.State, fin.Error)
	}
	res := fin.Result
	if res == nil {
		return fmt.Errorf("job %s finished %s without a result", fin.ID, fin.State)
	}

	fmt.Fprintf(stdout, "circuit: %s\n", fin.Circuit)
	fmt.Fprintf(stdout, "  power: %10.3f -> %10.3f  (%.1f%% reduction)\n",
		res.InitialPower, res.FinalPower, res.ReductionPct)
	fmt.Fprintf(stdout, "  area:  %10.0f -> %10.0f\n", res.InitialArea, res.FinalArea)
	fmt.Fprintf(stdout, "  delay: %10.2f -> %10.2f\n", res.InitialDelay, res.FinalDelay)
	fmt.Fprintf(stdout, "  substitutions: %d in %.2fs (server), stopped: %s\n",
		res.Applied, res.RuntimeSeconds, res.Stopped)
	if res.Verified != "" {
		fmt.Fprintf(stdout, "  verify: %s\n", res.Verified)
	}
	if res.Activity != "" {
		fmt.Fprintf(stdout, "  activity: %s\n", res.Activity)
	}
	if fin.Cached {
		fmt.Fprintf(stdout, "  cached: result served from the daemon's content-addressed cache\n")
	}

	if cfg.outPath != "" {
		blif, err := c.ResultBLIF(ctx, fin.ID)
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.outPath, blif, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  wrote %s\n", cfg.outPath)
	}
	if cfg.ledgerJSON != "" {
		ledger, err := c.Ledger(ctx, fin.ID)
		if err != nil {
			return err
		}
		data, err := json.MarshalIndent(ledger, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(cfg.ledgerJSON, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote ledger to %s\n", cfg.ledgerJSON)
	}
	if tracer != nil {
		rootSpan.SetAttr("job", fin.ID)
		rootSpan.End()
		if err := c.UploadSpans(ctx, fin.ID, tracer.Snapshot()); err != nil {
			// A daemon that did not trace the job (e.g. one answered from
			// the result cache) cannot stitch; keep the client half.
			fmt.Fprintf(stderr, "span upload failed (%v); writing client-side spans only\n", err)
			f, ferr := os.Create(cfg.tracePerfetto)
			if ferr != nil {
				return ferr
			}
			werr := trace.WritePerfetto(f, tracer.Snapshot())
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return werr
			}
			fmt.Fprintf(stderr, "wrote client trace to %s\n", cfg.tracePerfetto)
			return nil
		}
		data, err := c.TracePerfetto(ctx, fin.ID)
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.tracePerfetto, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote stitched trace to %s\n", cfg.tracePerfetto)
	}
	return nil
}

// Command powder optimizes the power of a technology-mapped circuit by
// ATPG-based structural transformations (Rohfleisch/Kölbl/Wurth, DAC'96).
//
// Usage:
//
//	powder -in circuit.blif [-lib cells.genlib] [-out optimized.blif] [flags]
//	powder -circuit 9sym    [-out optimized.blif] [flags]
//
// The circuit is read as mapped BLIF against the library (default: the
// built-in lib2-style library), or generated from the built-in benchmark
// suite with -circuit. The optimized netlist is written as mapped BLIF.
package main

import (
	"flag"
	"fmt"
	"os"

	"powder/internal/atpg"
	"powder/internal/blif"
	"powder/internal/cellib"
	"powder/internal/circuits"
	"powder/internal/core"
	"powder/internal/netlist"
	"powder/internal/power"
	"powder/internal/resize"
	"powder/internal/synth"
	"powder/internal/transform"
	"powder/internal/verilog"
)

func main() {
	var (
		inPath   = flag.String("in", "", "input mapped BLIF file")
		circuit  = flag.String("circuit", "", "use a built-in benchmark circuit instead of -in")
		libPath  = flag.String("lib", "", "genlib library file (default: built-in lib2)")
		outPath  = flag.String("out", "", "write the optimized netlist as BLIF")
		vlogPath = flag.String("verilog", "", "write the optimized netlist as structural Verilog (with primitives)")
		delayFac = flag.Float64("delay-factor", 0, "delay constraint as a factor of the initial delay (1.0 = keep delay; 0 = unconstrained)")
		delayAbs = flag.Float64("delay", 0, "absolute delay constraint in library time units (0 = unconstrained)")
		repeat   = flag.Int("repeat", 10, "substitutions per candidate harvest")
		preK     = flag.Int("preselect", 12, "candidates reestimated per selection")
		words    = flag.Int("words", 64, "64-bit sample words for probability estimation")
		seed     = flag.Int64("seed", 1, "random-vector seed")
		budget   = flag.Int64("budget", 0, "ATPG/SAT conflict budget per check (0 = default)")
		maxSubs  = flag.Int("max-subs", 0, "stop after this many substitutions (0 = unlimited)")
		noInv    = flag.Bool("no-inverted", false, "disable inverted-source substitutions")
		doResize = flag.Bool("resize", false, "run the gate re-sizing pass after POWDER")
		doVerify = flag.Bool("verify", false, "independently re-verify the optimized circuit against the original (SAT equivalence check)")
		verbose  = flag.Bool("v", false, "trace every performed substitution")
	)
	flag.Parse()

	if err := run(*inPath, *circuit, *libPath, *outPath, *vlogPath, *delayFac, *delayAbs,
		*repeat, *preK, *words, *seed, *budget, *maxSubs, !*noInv, *doResize, *doVerify, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "powder:", err)
		os.Exit(1)
	}
}

func run(inPath, circuit, libPath, outPath, vlogPath string, delayFac, delayAbs float64,
	repeat, preK, words int, seed, budget int64, maxSubs int, inverted, doResize, doVerify, verbose bool) error {

	lib := cellib.Lib2()
	if libPath != "" {
		f, err := os.Open(libPath)
		if err != nil {
			return err
		}
		defer f.Close()
		lib, err = cellib.ParseGenlib(f)
		if err != nil {
			return err
		}
	}

	var nl *netlist.Netlist
	switch {
	case inPath != "" && circuit != "":
		return fmt.Errorf("use either -in or -circuit, not both")
	case inPath != "":
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		nl, err = blif.Read(f, lib)
		if err != nil {
			return err
		}
	case circuit != "":
		spec, err := circuits.ByName(circuit)
		if err != nil {
			return fmt.Errorf("%v (known: %v)", err, circuits.Names())
		}
		nl, err = synth.Compile(spec.Build(), lib, synth.Options{Mode: synth.CostPower})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -in FILE or -circuit NAME (see -h)")
	}

	opts := core.Options{
		DelayConstraint:  delayAbs,
		DelayFactor:      delayFac,
		Repeat:           repeat,
		PreselectK:       preK,
		MaxSubstitutions: maxSubs,
		CheckBudget:      budget,
		Power:            power.Options{Words: words, Seed: seed},
		Transform:        transform.Config{AllowInverted: inverted},
	}
	if verbose {
		opts.Trace = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	var original *netlist.Netlist
	if doVerify {
		original = nl.Clone()
	}

	res, err := core.Optimize(nl, opts)
	if err != nil {
		return err
	}

	fmt.Printf("circuit: %s\n", nl.Name)
	fmt.Printf("  power: %10.3f -> %10.3f  (%.1f%% reduction)\n",
		res.Initial.Power, res.Final.Power, res.PowerReductionPct())
	fmt.Printf("  area:  %10.0f -> %10.0f  (%+.1f%%)\n",
		res.Initial.Area, res.Final.Area, res.AreaChangePct())
	fmt.Printf("  delay: %10.2f -> %10.2f", res.InitialDelay, res.FinalDelay)
	if res.Constraint > 0 {
		fmt.Printf("  (constraint %.2f)", res.Constraint)
	}
	fmt.Println()
	fmt.Printf("  gates: %10d -> %10d\n", res.Initial.Gates, res.Final.Gates)
	fmt.Printf("  substitutions: %d (OS2 %d, IS2 %d, OS3 %d, IS3 %d) in %s\n",
		res.Applied,
		res.ByClass[transform.OS2].Count, res.ByClass[transform.IS2].Count,
		res.ByClass[transform.OS3].Count, res.ByClass[transform.IS3].Count,
		res.Runtime.Round(1e6))
	fmt.Printf("  permissibility checks: %s\n", res.CheckStats)

	if doResize {
		rr, err := resize.Optimize(nl, resize.Options{
			DelayConstraint: res.Constraint,
			Power:           power.Options{Words: words, Seed: seed},
		})
		if err != nil {
			return err
		}
		fmt.Printf("  %s\n", rr)
	}

	if doVerify {
		eq, err := atpg.Equivalent(original, nl, 0)
		if err != nil {
			return err
		}
		switch eq.Verdict {
		case atpg.Permissible:
			fmt.Println("  verify: optimized circuit proven equivalent to the original")
		case atpg.NotPermissible:
			return fmt.Errorf("VERIFICATION FAILED: output %q differs on %v",
				eq.DifferingOutput, eq.Counterexample)
		default:
			fmt.Println("  verify: inconclusive (budget exhausted)")
		}
	}

	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := blif.Write(f, nl); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", outPath)
	}
	if vlogPath != "" {
		f, err := os.Create(vlogPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := verilog.Write(f, nl, verilog.Options{EmitPrimitives: true}); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", vlogPath)
	}
	return nil
}

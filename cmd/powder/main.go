// Command powder optimizes the power of a technology-mapped circuit by
// ATPG-based structural transformations (Rohfleisch/Kölbl/Wurth, DAC'96).
//
// Usage:
//
//	powder -in circuit.blif [-lib cells.genlib] [-out optimized.blif] [flags]
//	powder -circuit 9sym    [-out optimized.blif] [flags]
//
// The circuit is read as mapped BLIF against the library (default: the
// built-in lib2-style library), or generated from the built-in benchmark
// suite with -circuit. The optimized netlist is written as mapped BLIF.
//
// Sequential circuits (.latch) are detected automatically: the design is
// cut at its register boundaries, the state-line signal probabilities are
// iterated to their steady state (-fix-tol/-fix-max-iter/-fix-damping),
// and the combinational core is optimized with the converged
// probabilities; the emitted BLIF has the latches stitched back. -probs
// FILE supplies per-primary-input signal probabilities as "name=p" lines
// for both combinational and sequential circuits.
//
// Observability: -trace-json streams structured JSONL run events
// (harvest, check, apply, reject, metrics), -trace-perfetto records a
// hierarchical span trace (optimize → harvest/candidate → prove →
// sat-solve, plus apply and escalation spans) as Chrome/Perfetto
// trace-event JSON, -ledger-json writes the run
// ledger (per-substitution provenance and power attribution), -report
// renders a markdown run explanation to stdout, -metrics prints the
// metrics registry and phase breakdown to stderr, and
// -cpuprofile/-memprofile write pprof profiles. The report goes to
// stdout; traces and progress go to stderr.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"powder/internal/activity"
	"powder/internal/atpg"
	"powder/internal/blif"
	"powder/internal/cellib"
	"powder/internal/circuits"
	"powder/internal/core"
	"powder/internal/netlist"
	"powder/internal/obs"
	"powder/internal/obs/trace"
	"powder/internal/power"
	"powder/internal/resize"
	"powder/internal/seq"
	"powder/internal/synth"
	"powder/internal/transform"
	"powder/internal/verilog"
)

// config carries every command-line option of one powder invocation.
type config struct {
	inPath    string
	circuit   string
	libPath   string
	outPath   string
	vlogPath  string
	probsPath string

	activityPath  string
	activityClock int64
	dumpVCDPath   string
	dumpSAIFPath  string

	fixTol     float64
	fixMaxIter int
	fixDamping float64

	delayFactor float64
	delayAbs    float64
	repeat      int
	preselect   int
	words       int
	seed        int64
	budget      int64
	maxSubs     int
	maxRetries  int
	par         int
	timeout     time.Duration
	inverted    bool
	resize      bool
	verify      bool
	verbose     bool

	server  string
	noCache bool

	traceJSON     string
	tracePerfetto string
	traceSample   int64
	ledgerJSON    string
	report        bool
	metrics       bool
	cpuProfile    string
	memProfile    string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.inPath, "in", "", "input mapped BLIF file")
	flag.StringVar(&cfg.circuit, "circuit", "", "use a built-in benchmark circuit instead of -in")
	flag.StringVar(&cfg.libPath, "lib", "", "genlib library file (default: built-in lib2)")
	flag.StringVar(&cfg.outPath, "out", "", "write the optimized netlist as BLIF")
	flag.StringVar(&cfg.vlogPath, "verilog", "", "write the optimized netlist as structural Verilog (with primitives)")
	flag.StringVar(&cfg.probsPath, "probs", "", "per-primary-input signal probability file (name=p lines)")
	flag.StringVar(&cfg.activityPath, "activity", "", "workload switching-activity dump (VCD or SAIF, sniffed by content); matched signals drive input probabilities and pin transition densities")
	flag.Int64Var(&cfg.activityClock, "activity-clock", 0, "clock period of the -activity dump in its own time units, for dumps whose time axis is finer than the clock (0 = one cycle per VCD timestamp / SAIF time unit)")
	flag.StringVar(&cfg.dumpVCDPath, "dump-vcd", "", "write the random-simulation input stimulus as a VCD to this file (ingestable by -activity)")
	flag.StringVar(&cfg.dumpSAIFPath, "dump-saif", "", "write the random-simulation input stimulus as a SAIF summary to this file (ingestable by -activity)")
	flag.Float64Var(&cfg.fixTol, "fix-tol", 0, "steady-state fixpoint tolerance for sequential circuits (0 = 1e-6)")
	flag.IntVar(&cfg.fixMaxIter, "fix-max-iter", 0, "fixpoint iteration cap; hitting it is an error, not a hang (0 = 1000)")
	flag.Float64Var(&cfg.fixDamping, "fix-damping", 0, "fixpoint damping: retained fraction of the previous iterate (0 = 0.5, negative = undamped)")
	flag.Float64Var(&cfg.delayFactor, "delay-factor", 0, "delay constraint as a factor of the initial delay (1.0 = keep delay; 0 = unconstrained)")
	flag.Float64Var(&cfg.delayAbs, "delay", 0, "absolute delay constraint in library time units (0 = unconstrained)")
	flag.IntVar(&cfg.repeat, "repeat", 10, "substitutions per candidate harvest")
	flag.IntVar(&cfg.preselect, "preselect", 12, "candidates reestimated per selection")
	flag.IntVar(&cfg.words, "words", 64, "64-bit sample words for probability estimation")
	flag.Int64Var(&cfg.seed, "seed", 1, "random-vector seed")
	flag.Int64Var(&cfg.budget, "budget", 0, "ATPG/SAT conflict budget per check (0 = default)")
	flag.IntVar(&cfg.maxSubs, "max-subs", 0, "stop after this many substitutions (0 = unlimited)")
	flag.IntVar(&cfg.maxRetries, "max-retries", 0, "budget-escalation retries for aborted proofs across the run (0 = no escalation)")
	flag.IntVar(&cfg.par, "par", 1, "parallel fanout-region workers inside the optimization (<=1 = sequential engine, byte-identical to pre-parallel builds)")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "wall-clock budget, e.g. 30s; on expiry the best netlist so far is emitted (0 = none)")
	flag.StringVar(&cfg.server, "server", "", "submit to a powderd daemon at this base URL (e.g. http://localhost:8844) instead of optimizing locally")
	flag.BoolVar(&cfg.noCache, "no-cache", false, "with -server: bypass the daemon's content-addressed result cache")
	noInv := flag.Bool("no-inverted", false, "disable inverted-source substitutions")
	flag.BoolVar(&cfg.resize, "resize", false, "run the gate re-sizing pass after POWDER")
	flag.BoolVar(&cfg.verify, "verify", false, "independently re-verify the optimized circuit against the original (SAT equivalence check)")
	flag.BoolVar(&cfg.verbose, "v", false, "trace every performed substitution to stderr")
	flag.StringVar(&cfg.traceJSON, "trace-json", "", "write structured run events as JSON Lines to this file")
	flag.StringVar(&cfg.tracePerfetto, "trace-perfetto", "", "write the run's hierarchical span trace as Chrome/Perfetto trace-event JSON to this file (load in ui.perfetto.dev)")
	flag.Int64Var(&cfg.traceSample, "trace-sample", 1, "span-trace one run in every N (1 = always, 0 = off); only meaningful with -trace-perfetto")
	flag.StringVar(&cfg.ledgerJSON, "ledger-json", "", "write the run ledger (substitution provenance + power attribution) as JSON to this file")
	flag.BoolVar(&cfg.report, "report", false, "print a markdown run report (attribution table, predicted-vs-realized, reject and proof stats) instead of the plain summary")
	flag.BoolVar(&cfg.metrics, "metrics", false, "collect a metrics registry and print it to stderr")
	flag.StringVar(&cfg.cpuProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	flag.StringVar(&cfg.memProfile, "memprofile", "", "write a pprof heap profile to this file")
	flag.Parse()
	cfg.inverted = !*noInv

	// Ctrl-C asks the engine to stop and emit the best netlist so far; a
	// second Ctrl-C kills the process the usual way. SIGQUIT dumps the
	// flight recorder before the runtime's goroutine dump.
	obs.FlightDumpOnQuit(nil)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := run(ctx, cfg, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "powder:", err)
		os.Exit(1)
	}
}

// buildObserver assembles the observer of one run from the trace/metrics
// flags; close releases the trace file. The returned observer is nil when
// observability is off.
func buildObserver(cfg config, stderr io.Writer) (o *obs.Observer, reg *obs.Registry, cleanup func(), err error) {
	var sinks []obs.Sink
	cleanup = func() {}
	// -report reads proof-latency quantiles from the registry, so it
	// forces one on even without -metrics.
	if cfg.metrics || cfg.report || cfg.traceJSON != "" {
		reg = obs.NewRegistry()
	}
	if cfg.traceJSON != "" {
		f, err := os.Create(cfg.traceJSON)
		if err != nil {
			return nil, nil, nil, err
		}
		// The file writer hides behind an async drop-and-count stage so a
		// slow disk can never stall the optimizer; drops surface as
		// obs_dropped_events_total in any metrics exposition.
		async := obs.NewAsyncSink(obs.NewJSONLSink(f), 0, reg.Counter("obs.dropped.events"))
		sinks = append(sinks, async)
		cleanup = func() {
			async.Close()
			f.Close()
		}
	}
	if cfg.verbose {
		// Substitution traces go to stderr so stdout stays a clean report.
		sinks = append(sinks, obs.NewLineSink(func(s string) {
			fmt.Fprintln(stderr, s)
		}, "apply", "reject"))
	}
	return obs.New(obs.Multi(sinks...), reg), reg, cleanup, nil
}

// coreInputNames lists the optimization core's input names: true primary
// inputs followed by latch outputs (the register-cut pseudo-inputs).
func coreInputNames(circ *seq.Circuit) []string {
	core := circ.Core()
	names := make([]string, 0, len(core.Inputs()))
	for _, id := range core.Inputs() {
		names = append(names, core.Node(id).Name())
	}
	return names
}

// loadActivity ingests the -activity dump, applies the -activity-clock
// renormalization, and binds it onto the core's input names, reporting
// coverage to stderr. Returns the binding plus the ledger label naming
// the workload model.
func loadActivity(cfg config, circ *seq.Circuit, stderr io.Writer) (*activity.Binding, string, error) {
	f, err := os.Open(cfg.activityPath)
	if err != nil {
		return nil, "", err
	}
	prof, err := activity.Read(f)
	f.Close()
	if err != nil {
		return nil, "", err
	}
	if cfg.activityClock > 0 {
		if err := prof.SetClockPeriod(cfg.activityClock); err != nil {
			return nil, "", err
		}
	}
	b, err := prof.Bind(coreInputNames(circ))
	if err != nil {
		return nil, "", err
	}
	if b.MatchedCount == 0 {
		// A dump from the wrong design must fail loudly, not silently run
		// the uniform assumption it was supposed to replace.
		return nil, "", fmt.Errorf("activity: %s matched none of the circuit's %d inputs (profile signals: %d)",
			cfg.activityPath, len(b.Names), len(prof.Signals))
	}
	fmt.Fprintf(stderr, "activity: %s (%s, %d signals, %d ignored, %d cycles): %s\n",
		cfg.activityPath, prof.Source, len(prof.Signals), prof.Ignored, prof.Cycles, b.Coverage())
	label := fmt.Sprintf("%s sha256:%.12s %s", filepath.Base(cfg.activityPath), prof.Digest(), b.Coverage())
	return b, label, nil
}

// writeStimulusDumps writes the run's random input stimulus as VCD
// and/or SAIF. For sequential circuits the dump covers the register-cut
// core inputs (true inputs and latch outputs); -probs biases the true
// inputs while state lines stay at 0.5 (their steady state is not known
// before the fixpoint runs).
func writeStimulusDumps(cfg config, circ *seq.Circuit, inputProbs []float64, stderr io.Writer) error {
	core := circ.Core()
	probs := inputProbs
	if probs != nil && len(probs) < len(core.Inputs()) {
		padded := make([]float64, len(core.Inputs()))
		for i := range padded {
			padded[i] = 0.5
		}
		copy(padded, probs)
		probs = padded
	}
	opts := activity.DumpOptions{Words: cfg.words, Seed: cfg.seed, InputProbs: probs}
	write := func(path, kind string, dump func(io.Writer, *netlist.Netlist, activity.DumpOptions) (int, error)) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		n, err := dump(f, core, opts)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s stimulus (%d vectors, %d inputs) to %s\n",
			kind, n, len(core.Inputs()), path)
		return nil
	}
	if err := write(cfg.dumpVCDPath, "VCD", activity.DumpVCD); err != nil {
		return err
	}
	return write(cfg.dumpSAIFPath, "SAIF", activity.DumpSAIF)
}

// loadModel resolves the input circuit: a mapped BLIF file (-in) or a
// built-in benchmark (-circuit) compiled against the library.
func loadModel(cfg config, lib *cellib.Library) (*blif.Model, error) {
	switch {
	case cfg.inPath != "" && cfg.circuit != "":
		return nil, fmt.Errorf("use either -in or -circuit, not both")
	case cfg.inPath != "":
		f, err := os.Open(cfg.inPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return blif.ReadModel(f, lib)
	case cfg.circuit != "":
		if spec, err := circuits.ByName(cfg.circuit); err == nil {
			nl, err := synth.Compile(spec.Build(), lib, synth.Options{Mode: synth.CostPower})
			if err != nil {
				return nil, err
			}
			return &blif.Model{Netlist: nl, NumInputs: len(nl.Inputs()), NumOutputs: len(nl.Outputs())}, nil
		} else if spec, err := circuits.SeqByName(cfg.circuit); err == nil {
			return spec.Build(lib)
		}
		return nil, fmt.Errorf("unknown circuit %q (combinational: %v; sequential: %v)",
			cfg.circuit, circuits.Names(), circuits.SeqNames())
	default:
		return nil, fmt.Errorf("need -in FILE or -circuit NAME (see -h)")
	}
}

func run(ctx context.Context, cfg config, stdout, stderr io.Writer) error {
	if cfg.words <= 0 {
		return fmt.Errorf("-words must be positive, got %d", cfg.words)
	}
	if cfg.repeat <= 0 {
		return fmt.Errorf("-repeat must be positive, got %d", cfg.repeat)
	}
	if cfg.timeout < 0 {
		return fmt.Errorf("-timeout must not be negative, got %v", cfg.timeout)
	}
	if cfg.maxRetries < 0 {
		return fmt.Errorf("-max-retries must not be negative, got %d", cfg.maxRetries)
	}
	if cfg.cpuProfile != "" {
		stopProf, err := obs.StartCPUProfile(cfg.cpuProfile)
		if err != nil {
			return err
		}
		defer stopProf()
	}

	lib := cellib.Lib2()
	if cfg.libPath != "" {
		f, err := os.Open(cfg.libPath)
		if err != nil {
			return err
		}
		defer f.Close()
		lib, err = cellib.ParseGenlib(f)
		if err != nil {
			return err
		}
	}

	model, err := loadModel(cfg, lib)
	if err != nil {
		return err
	}

	if cfg.server != "" {
		// Remote mode: ship the circuit to a powderd daemon. The model is
		// serialized back to BLIF so -circuit works remotely too.
		var buf bytes.Buffer
		if err := blif.WriteModel(&buf, model); err != nil {
			return err
		}
		return runRemote(ctx, cfg, buf.Bytes(), stdout, stderr)
	}

	circ, err := seq.FromModel(model)
	if err != nil {
		return err
	}
	nl := model.Netlist
	if cfg.vlogPath != "" && circ.Model.Sequential() {
		return fmt.Errorf("-verilog does not support sequential circuits yet; use -out for latch-aware BLIF")
	}

	// Per-primary-input probabilities (combinational: every input;
	// sequential: the true inputs, with state lines ruled by the fixpoint).
	var inputProbs []float64
	if cfg.probsPath != "" {
		f, err := os.Open(cfg.probsPath)
		if err != nil {
			return err
		}
		entries, err := seq.ParseProbs(f)
		f.Close()
		if err != nil {
			return err
		}
		inputProbs, err = seq.ResolveProbs(entries, circ)
		if err != nil {
			return err
		}
	}

	// Stimulus dumps are written from the *input* netlist, before any
	// substitution, so the emitted workload describes the circuit the
	// user submitted.
	if cfg.dumpVCDPath != "" || cfg.dumpSAIFPath != "" {
		if err := writeStimulusDumps(cfg, circ, inputProbs, stderr); err != nil {
			return err
		}
	}

	// A workload activity dump replaces the uniform assumption: matched
	// inputs get measured probabilities, and measured transition
	// densities pin E(i) at the PIs (and across the register cut).
	var binding *activity.Binding
	var activityLabel string
	if cfg.activityPath != "" {
		if cfg.probsPath != "" {
			return fmt.Errorf("use either -probs or -activity, not both (the dump already carries input probabilities)")
		}
		var err error
		binding, activityLabel, err = loadActivity(cfg, circ, stderr)
		if err != nil {
			return err
		}
	}

	observer, reg, closeTrace, err := buildObserver(cfg, stderr)
	if err != nil {
		return err
	}
	defer closeTrace()

	// The span tracer rides the context: the engine's "optimize" span is
	// the trace root, so its duration is the optimization wall time. The
	// completed spans also mirror onto the -trace-json event stream.
	var tracer *trace.Tracer
	if cfg.tracePerfetto != "" && trace.Every(cfg.traceSample).Sample() {
		tracer = trace.New(nl.Name, trace.Options{
			Obs:         observer,
			DropCounter: reg.Counter("trace.dropped.spans"),
		})
		ctx = trace.NewContext(ctx, tracer)
	}

	opts := core.Options{
		DelayConstraint:  cfg.delayAbs,
		DelayFactor:      cfg.delayFactor,
		Repeat:           cfg.repeat,
		PreselectK:       cfg.preselect,
		MaxSubstitutions: cfg.maxSubs,
		MaxRetries:       cfg.maxRetries,
		Parallelism:      cfg.par,
		Timeout:          cfg.timeout,
		CheckBudget:      cfg.budget,
		Power:            power.Options{Words: cfg.words, Seed: cfg.seed},
		Transform:        transform.Config{AllowInverted: cfg.inverted},
		Activity:         activityLabel,
		Obs:              observer,
	}

	var original *netlist.Netlist
	if cfg.verify {
		original = nl.Clone()
	}

	var res *core.Result
	if circ.Model.Sequential() {
		fmt.Fprintf(stderr, "sequential circuit: %d latches, cutting at the register boundary\n", circ.NumLatches())
		sopts := seq.Options{
			Core: opts,
			Fixpoint: seq.FixpointOptions{
				Tol:        cfg.fixTol,
				MaxIter:    cfg.fixMaxIter,
				Damping:    cfg.fixDamping,
				InputProbs: inputProbs,
				Obs:        observer,
			},
		}
		if binding != nil {
			sopts.Activity = &seq.ActivityOverride{
				Probs:   binding.Probs,
				Toggles: binding.Toggles,
				Matched: binding.Matched,
			}
		}
		sres, err := seq.OptimizeCtx(ctx, circ, sopts)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "steady-state fixpoint: %d iterations, residual %.3g\n",
			sres.Fixpoint.Iterations, sres.Fixpoint.Residual)
		res = sres.Core
	} else {
		if inputProbs != nil {
			opts.Power.InputProbs = inputProbs
		}
		if binding != nil {
			opts.Power.InputProbs = binding.Probs
			opts.Power.InputToggles = binding.Toggles
		}
		var err error
		res, err = core.OptimizeCtx(ctx, nl, opts)
		if err != nil {
			return err
		}
	}

	// The final metrics block: phase breakdown plus the registry snapshot,
	// emitted as the last JSONL event and/or printed to stderr.
	if reg != nil {
		snap := reg.Snapshot()
		observer.Emit("metrics", obs.Fields{
			"phases":          res.Phases.Map(),
			"phase_seconds":   res.Phases.Seconds(),
			"runtime_seconds": res.Runtime.Seconds(),
			"rejects":         res.Rejects,
			"counters":        snap.Counters,
			"histograms":      snap.Histograms,
		})
		if cfg.metrics {
			fmt.Fprintf(stderr, "phases: %s\n", res.Phases)
			snap.WriteText(stderr)
		}
	}

	if tracer != nil {
		f, err := os.Create(cfg.tracePerfetto)
		if err != nil {
			return err
		}
		spans := tracer.Snapshot()
		werr := trace.WritePerfetto(f, spans)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Fprintf(stderr, "wrote trace to %s (%d spans, %d dropped)\n",
			cfg.tracePerfetto, len(spans), tracer.Dropped())
	}

	if cfg.ledgerJSON != "" {
		data, err := json.MarshalIndent(res.Ledger, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.ledgerJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote ledger to %s\n", cfg.ledgerJSON)
	}

	if cfg.report {
		core.WriteReport(stdout, nl.Name, res, reg)
	} else {
		fmt.Fprintf(stdout, "circuit: %s\n", nl.Name)
		fmt.Fprintf(stdout, "  power: %10.3f -> %10.3f  (%.1f%% reduction)\n",
			res.Initial.Power, res.Final.Power, res.PowerReductionPct())
		fmt.Fprintf(stdout, "  area:  %10.0f -> %10.0f  (%+.1f%%)\n",
			res.Initial.Area, res.Final.Area, res.AreaChangePct())
		fmt.Fprintf(stdout, "  delay: %10.2f -> %10.2f", res.InitialDelay, res.FinalDelay)
		if res.Constraint > 0 {
			fmt.Fprintf(stdout, "  (constraint %.2f)", res.Constraint)
		}
		fmt.Fprintln(stdout)
		fmt.Fprintf(stdout, "  gates: %10d -> %10d\n", res.Initial.Gates, res.Final.Gates)
		fmt.Fprintf(stdout, "  substitutions: %d (OS2 %d, IS2 %d, OS3 %d, IS3 %d) in %s\n",
			res.Applied,
			res.ByClass[transform.OS2].Count, res.ByClass[transform.IS2].Count,
			res.ByClass[transform.OS3].Count, res.ByClass[transform.IS3].Count,
			res.Runtime.Round(1e6))
		fmt.Fprintf(stdout, "  permissibility checks: %s\n", res.CheckStats)
		if res.Escalation.Retries > 0 {
			fmt.Fprintf(stdout, "  budget escalations: %d retries (%d proven, %d refuted, %d exhausted)\n",
				res.Escalation.Retries, res.Escalation.Permissible,
				res.Escalation.Refuted, res.Escalation.Exhausted)
		}
		if rb := res.Rejects[core.RejectRollback]; rb > 0 {
			fmt.Fprintf(stdout, "  rollbacks: %d\n", rb)
		}
		if p := res.Parallel; p != nil {
			fmt.Fprintf(stdout, "  parallel: %d workers, %d rounds, %d regions, %d proposals (%d conflicts, %d replays, %d cache hits)\n",
				p.Workers, p.Rounds, p.Regions, p.Proposals, p.Conflicts, p.Replays, p.SigCacheHits)
		}
		if res.StoppedEarly() {
			fmt.Fprintf(stdout, "  stopped early: %s (the emitted netlist is the best verified result so far)\n", res.Stopped)
		}
	}

	if cfg.resize {
		rr, err := resize.Optimize(nl, resize.Options{
			DelayConstraint: res.Constraint,
			Power:           power.Options{Words: cfg.words, Seed: cfg.seed},
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  %s\n", rr)
	}

	if cfg.verify {
		eq, err := atpg.Equivalent(original, nl, 0)
		if err != nil {
			return err
		}
		switch eq.Verdict {
		case atpg.Permissible:
			fmt.Fprintln(stdout, "  verify: optimized circuit proven equivalent to the original")
		case atpg.NotPermissible:
			return fmt.Errorf("VERIFICATION FAILED: output %q differs on %v",
				eq.DifferingOutput, eq.Counterexample)
		default:
			fmt.Fprintln(stdout, "  verify: inconclusive (budget exhausted)")
		}
	}

	if cfg.outPath != "" {
		f, err := os.Create(cfg.outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := blif.WriteModel(f, model); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  wrote %s\n", cfg.outPath)
	}
	if cfg.vlogPath != "" {
		f, err := os.Create(cfg.vlogPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := verilog.Write(f, nl, verilog.Options{EmitPrimitives: true}); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  wrote %s\n", cfg.vlogPath)
	}

	if cfg.memProfile != "" {
		if err := obs.WriteHeapProfile(cfg.memProfile); err != nil {
			return err
		}
	}
	return nil
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powder/internal/obs"
)

// TestReportAndLedgerJSON is the CLI acceptance scenario: -report renders
// the markdown explanation and -ledger-json writes a parseable ledger
// whose realized gains sum to the headline within 1e-9.
func TestReportAndLedgerJSON(t *testing.T) {
	dir := t.TempDir()
	ledgerPath := filepath.Join(dir, "ledger.json")
	var stdout, stderr bytes.Buffer
	cfg := config{
		circuit: "comp", repeat: 10, preselect: 12, words: 16, seed: 1,
		inverted: true, report: true, ledgerJSON: ledgerPath,
	}
	if err := run(context.Background(), cfg, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}

	out := stdout.String()
	for _, want := range []string{
		"# POWDER run report",
		"## Top moves by realized gain",
		"## Predicted vs realized",
		"**total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// The plain summary must be replaced, not duplicated.
	if strings.Contains(out, "permissibility checks:") {
		t.Errorf("plain summary printed alongside the report:\n%s", out)
	}

	data, err := os.ReadFile(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	var led obs.LedgerSummary
	if err := json.Unmarshal(data, &led); err != nil {
		t.Fatalf("ledger JSON unparseable: %v", err)
	}
	if led.Applied == 0 || len(led.Moves) != led.Applied {
		t.Fatalf("ledger moves %d, applied %d", len(led.Moves), led.Applied)
	}
	// The acceptance property, end to end through the CLI: per-move
	// realized gains sum to the headline drop.
	var sum float64
	for _, m := range led.Moves {
		sum += m.RealizedGain
	}
	if diff := math.Abs(sum - led.RealizedGain); diff > 1e-9 {
		t.Errorf("move sum %.12g != ledger total %.12g", sum, led.RealizedGain)
	}
	first, last := led.Moves[0], led.Moves[len(led.Moves)-1]
	if first.PowerBefore == 0 || last.PowerAfter == 0 {
		t.Errorf("moves missing power brackets: first=%+v last=%+v", first, last)
	}
	if diff := math.Abs((first.PowerBefore - last.PowerAfter) - led.RealizedGain); diff > 1e-9 {
		t.Errorf("power brackets %.12g..%.12g do not telescope to %.12g",
			first.PowerBefore, last.PowerAfter, led.RealizedGain)
	}
}

// TestLedgerJSONWithoutReport pins that -ledger-json works standalone and
// leaves the plain summary on stdout.
func TestLedgerJSONWithoutReport(t *testing.T) {
	dir := t.TempDir()
	ledgerPath := filepath.Join(dir, "ledger.json")
	var stdout, stderr bytes.Buffer
	cfg := config{
		circuit: "t481", repeat: 10, preselect: 12, words: 16, seed: 1,
		inverted: true, ledgerJSON: ledgerPath,
	}
	if err := run(context.Background(), cfg, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "permissibility checks:") {
		t.Errorf("plain summary missing:\n%s", stdout.String())
	}
	if _, err := os.Stat(ledgerPath); err != nil {
		t.Fatalf("ledger not written: %v", err)
	}
	if !strings.Contains(stderr.String(), "wrote ledger") {
		t.Errorf("stderr missing ledger note:\n%s", stderr.String())
	}
}

package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powder/internal/blif"
	"powder/internal/cellib"
)

const counter3Path = "../../examples/circuits/counter3.blif"

// TestRunSequentialFile drives the full sequential CLI path on the
// shipped example: auto-detection, fixpoint, optimization at the
// register cut, and latch-preserving BLIF output.
func TestRunSequentialFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "opt.blif")
	var stdout, stderr bytes.Buffer
	cfg := config{
		inPath: counter3Path, outPath: out,
		repeat: 10, preselect: 12, words: 16, seed: 1, inverted: true, verify: true,
	}
	if err := run(context.Background(), cfg, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "sequential circuit: 3 latches") {
		t.Errorf("stderr missing latch banner:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "steady-state fixpoint:") {
		t.Errorf("stderr missing fixpoint line:\n%s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "proven equivalent") {
		t.Errorf("stdout missing verification verdict:\n%s", stdout.String())
	}

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := blif.ReadModel(f, cellib.Lib2())
	if err != nil {
		t.Fatalf("output BLIF unreadable: %v", err)
	}
	if len(m.Latches) != 3 {
		t.Errorf("output has %d latches, want 3", len(m.Latches))
	}
	for _, l := range m.Latches {
		if l.Kind != "re" || l.Control != "clk" || l.Init != 0 {
			t.Errorf("latch attributes lost: %+v", l)
		}
	}
}

// TestRunSequentialBuiltin picks a sequential circuit from the built-in
// family by name.
func TestRunSequentialBuiltin(t *testing.T) {
	var stdout, stderr bytes.Buffer
	cfg := config{
		circuit: "fsm1011",
		repeat:  10, preselect: 12, words: 16, seed: 1, inverted: true,
	}
	if err := run(context.Background(), cfg, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "sequential circuit: 2 latches") {
		t.Errorf("stderr missing latch banner:\n%s", stderr.String())
	}
}

// TestRunVerilogRejectsSequential pins the unsupported-path contract:
// -verilog on a latch circuit is an upfront error, not a broken module.
func TestRunVerilogRejectsSequential(t *testing.T) {
	cfg := config{
		inPath: counter3Path, vlogPath: filepath.Join(t.TempDir(), "c.v"),
		repeat: 10, preselect: 12, words: 16, seed: 1, inverted: true,
	}
	err := runQuiet(t, cfg)
	if err == nil || !strings.Contains(err.Error(), "sequential") {
		t.Fatalf("err = %v, want sequential-circuit rejection", err)
	}
}

func writeProbs(t *testing.T, src string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "in.probs")
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestRunProbsSequential feeds a biased enable probability into the
// sequential path; -probs names only the true primary inputs, the state
// lines come from the fixpoint.
func TestRunProbsSequential(t *testing.T) {
	cfg := config{
		inPath:    counter3Path,
		probsPath: writeProbs(t, "# counter enable\nen = 0.25\n"),
		repeat:    10, preselect: 12, words: 16, seed: 1, inverted: true,
	}
	if err := runQuiet(t, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRunProbsCombinational exercises -probs on a pure combinational
// run, where it switches the power model to biased random vectors.
func TestRunProbsCombinational(t *testing.T) {
	cfg := config{
		circuit:   "t481",
		probsPath: writeProbs(t, "x0=0.9\nx1=0.1\n"),
		repeat:    10, preselect: 12, words: 16, seed: 1, inverted: true,
	}
	if err := runQuiet(t, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRunProbsErrors pins the -probs failure contract: malformed lines,
// out-of-range values, and unknown or state-line names fail with the
// offending line number.
func TestRunProbsErrors(t *testing.T) {
	cases := map[string]struct {
		src  string
		want string
	}{
		"bad value":    {"en = 1.5\n", "line 1"},
		"not a number": {"en = maybe\n", "line 1"},
		"unknown name": {"en = 0.5\nbogus = 0.5\n", "line 2"},
		"state line":   {"q0 = 0.5\n", "latch output"},
	}
	for name, tc := range cases {
		cfg := config{
			inPath:    counter3Path,
			probsPath: writeProbs(t, tc.src),
			repeat:    10, preselect: 12, words: 16, seed: 1, inverted: true,
		}
		err := runQuiet(t, cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", name, err, tc.want)
		}
	}
}

// TestRunSequentialFixpointFlags threads the -fix-* flags through to the
// estimator: an undamped run on a circuit that needs damping must fail
// with the explicit divergence error, never hang.
func TestRunSequentialFixpointFlags(t *testing.T) {
	// Cross-coupled inverters oscillate under undamped iteration.
	src := `.model osc
.inputs en
.outputs y
.latch n0 q0 re clk 0
.latch n1 q1 re clk 0
.gate inv a=q1 O=n0
.gate inv a=q0 O=n1
.gate and2 a=q0 b=en O=y
.end
`
	p := filepath.Join(t.TempDir(), "osc.blif")
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := config{
		inPath: p, fixDamping: -1, fixMaxIter: 25,
		repeat: 10, preselect: 12, words: 16, seed: 1, inverted: true,
	}
	err := runQuiet(t, cfg)
	if err == nil || !strings.Contains(err.Error(), "diverge") {
		t.Fatalf("err = %v, want divergence", err)
	}

	// The same circuit converges with the default damping.
	cfg.fixDamping = 0
	cfg.fixMaxIter = 0
	if err := runQuiet(t, cfg); err != nil {
		t.Fatal(err)
	}
}

package main

import (
	"os"
	"path/filepath"
	"testing"

	"strings"

	"powder/internal/blif"
	"powder/internal/cellib"
)

func TestRunBuiltinCircuitEndToEnd(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "opt.blif")
	err := run("", "t481", "", out, "", 1.0, 0, 10, 12, 16, 1, 0, 0, true, false, true, false)
	if err != nil {
		t.Fatal(err)
	}
	// The written netlist must parse back against the default library.
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	nl, err := blif.Read(f, cellib.Lib2())
	if err != nil {
		t.Fatalf("output BLIF unreadable: %v", err)
	}
	if nl.GateCount() == 0 {
		t.Fatalf("empty output netlist")
	}
}

func TestRunFileInputWithCustomLibrary(t *testing.T) {
	dir := t.TempDir()
	libPath := filepath.Join(dir, "lib.genlib")
	blifPath := filepath.Join(dir, "c.blif")
	libSrc := `
GATE inv1  10 O=!a;      PIN * INV 1.0 999 0.3 0.10 0.3 0.10
GATE nand2 16 O=!(a*b);  PIN * INV 1.0 999 0.5 0.12 0.5 0.12
`
	blifSrc := `
.model t
.inputs a b
.outputs y
.gate nand2 a=a b=b O=n1
.gate inv1 a=n1 O=y
.end
`
	if err := os.WriteFile(libPath, []byte(libSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(blifPath, []byte(blifSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(blifPath, "", libPath, "", "", 0, 0, 10, 12, 8, 1, 0, 0, true, false, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunArgumentValidation(t *testing.T) {
	if err := run("", "", "", "", "", 0, 0, 10, 12, 8, 1, 0, 0, true, false, false, false); err == nil {
		t.Errorf("no input should fail")
	}
	if err := run("x.blif", "t481", "", "", "", 0, 0, 10, 12, 8, 1, 0, 0, true, false, false, false); err == nil {
		t.Errorf("both -in and -circuit should fail")
	}
	if err := run("", "nonexistent-circuit", "", "", "", 0, 0, 10, 12, 8, 1, 0, 0, true, false, false, false); err == nil {
		t.Errorf("unknown circuit should fail")
	}
	if err := run("/nonexistent/path.blif", "", "", "", "", 0, 0, 10, 12, 8, 1, 0, 0, true, false, false, false); err == nil {
		t.Errorf("missing input file should fail")
	}
}

func TestRunWithResizeAndVerify(t *testing.T) {
	if err := run("", "clip", "", "", "", 1.0, 0, 10, 12, 16, 1, 0, 0, true, true, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerilogOutput(t *testing.T) {
	dir := t.TempDir()
	v := filepath.Join(dir, "opt.v")
	if err := run("", "clip", "", "", v, 0, 0, 10, 12, 16, 1, 0, 0, true, false, false, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(v)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "module clip(") || !strings.Contains(string(data), "endmodule") {
		t.Errorf("verilog output malformed")
	}
}

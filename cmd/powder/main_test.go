package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"powder/internal/blif"
	"powder/internal/cellib"
)

// runQuiet runs with discarded output streams.
func runQuiet(t *testing.T, cfg config) error {
	t.Helper()
	var stdout, stderr bytes.Buffer
	return run(context.Background(), cfg, &stdout, &stderr)
}

func TestRunBuiltinCircuitEndToEnd(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "opt.blif")
	cfg := config{
		circuit: "t481", outPath: out, delayFactor: 1.0,
		repeat: 10, preselect: 12, words: 16, seed: 1, inverted: true, verify: true,
	}
	if err := runQuiet(t, cfg); err != nil {
		t.Fatal(err)
	}
	// The written netlist must parse back against the default library.
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	nl, err := blif.Read(f, cellib.Lib2())
	if err != nil {
		t.Fatalf("output BLIF unreadable: %v", err)
	}
	if nl.GateCount() == 0 {
		t.Fatalf("empty output netlist")
	}
}

func TestRunFileInputWithCustomLibrary(t *testing.T) {
	dir := t.TempDir()
	libPath := filepath.Join(dir, "lib.genlib")
	blifPath := filepath.Join(dir, "c.blif")
	libSrc := `
GATE inv1  10 O=!a;      PIN * INV 1.0 999 0.3 0.10 0.3 0.10
GATE nand2 16 O=!(a*b);  PIN * INV 1.0 999 0.5 0.12 0.5 0.12
`
	blifSrc := `
.model t
.inputs a b
.outputs y
.gate nand2 a=a b=b O=n1
.gate inv1 a=n1 O=y
.end
`
	if err := os.WriteFile(libPath, []byte(libSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(blifPath, []byte(blifSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := config{
		inPath: blifPath, libPath: libPath,
		repeat: 10, preselect: 12, words: 8, seed: 1, inverted: true,
	}
	if err := runQuiet(t, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunArgumentValidation(t *testing.T) {
	base := config{repeat: 10, preselect: 12, words: 8, seed: 1, inverted: true}

	cfg := base
	if err := runQuiet(t, cfg); err == nil {
		t.Errorf("no input should fail")
	}
	cfg = base
	cfg.inPath, cfg.circuit = "x.blif", "t481"
	if err := runQuiet(t, cfg); err == nil {
		t.Errorf("both -in and -circuit should fail")
	}
	cfg = base
	cfg.circuit = "nonexistent-circuit"
	if err := runQuiet(t, cfg); err == nil {
		t.Errorf("unknown circuit should fail")
	}
	cfg = base
	cfg.inPath = "/nonexistent/path.blif"
	if err := runQuiet(t, cfg); err == nil {
		t.Errorf("missing input file should fail")
	}
	cfg = base
	cfg.circuit, cfg.words = "t481", 0
	if err := runQuiet(t, cfg); err == nil {
		t.Errorf("words <= 0 should fail")
	}
	cfg = base
	cfg.circuit, cfg.repeat = "t481", -1
	if err := runQuiet(t, cfg); err == nil {
		t.Errorf("negative repeat should fail")
	}
	cfg = base
	cfg.circuit, cfg.timeout = "t481", -time.Second
	if err := runQuiet(t, cfg); err == nil {
		t.Errorf("negative timeout should fail")
	}
	cfg = base
	cfg.circuit, cfg.maxRetries = "t481", -1
	if err := runQuiet(t, cfg); err == nil {
		t.Errorf("negative max-retries should fail")
	}
}

// TestRunMalformedBLIF pins the CLI failure contract: broken input yields
// a clear error (propagated to a non-zero exit in main), never a panic.
func TestRunMalformedBLIF(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"truncated.blif": ".model t\n.inputs a b\n.outputs y\n.gate nand2B a=a b=b O=y\n",
		"dup-model.blif": ".model t\n.model t2\n.inputs a\n.outputs y\n.end\n",
		"unknown.blif":   ".model t\n.inputs a b\n.outputs y\n.gate bogus a=a b=b O=y\n.end\n",
		"garbage.blif":   "\x00\x01\x02 not blif at all",
	}
	for name, src := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		cfg := config{inPath: p, repeat: 10, preselect: 12, words: 8, seed: 1, inverted: true}
		if err := runQuiet(t, cfg); err == nil {
			t.Errorf("%s: malformed BLIF accepted", name)
		}
	}
}

// TestRunWithTimeout pins the deadline contract: a tiny -timeout run
// still terminates promptly, reports the stop reason, and writes a valid
// netlist.
func TestRunWithTimeout(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "opt.blif")
	var stdout, stderr bytes.Buffer
	cfg := config{
		circuit: "C880", outPath: out, timeout: 50 * time.Millisecond,
		repeat: 10, preselect: 12, words: 16, seed: 1, inverted: true, verify: true,
	}
	start := time.Now()
	if err := run(context.Background(), cfg, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout run took %v, want prompt termination", elapsed)
	}
	if !strings.Contains(stdout.String(), "stopped early: deadline") {
		t.Errorf("report missing stop reason:\n%s", stdout.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := blif.Read(f, cellib.Lib2()); err != nil {
		t.Fatalf("output BLIF unreadable after timeout: %v", err)
	}
}

func TestRunWithResizeAndVerify(t *testing.T) {
	cfg := config{
		circuit: "clip", delayFactor: 1.0,
		repeat: 10, preselect: 12, words: 16, seed: 1,
		inverted: true, resize: true, verify: true,
	}
	if err := runQuiet(t, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerilogOutput(t *testing.T) {
	dir := t.TempDir()
	v := filepath.Join(dir, "opt.v")
	cfg := config{
		circuit: "clip", vlogPath: v,
		repeat: 10, preselect: 12, words: 16, seed: 1, inverted: true,
	}
	if err := runQuiet(t, cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(v)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "module clip(") || !strings.Contains(string(data), "endmodule") {
		t.Errorf("verilog output malformed")
	}
}

// TestVerboseTracesGoToStderr pins the stream contract: -v substitution
// traces are stderr-only, stdout stays a clean report.
func TestVerboseTracesGoToStderr(t *testing.T) {
	var stdout, stderr bytes.Buffer
	cfg := config{
		circuit: "t481", repeat: 10, preselect: 12, words: 16, seed: 1,
		inverted: true, verbose: true,
	}
	if err := run(context.Background(), cfg, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(stdout.String(), "apply ") {
		t.Errorf("stdout contains substitution traces:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "circuit: t481") {
		t.Errorf("stdout lost the report:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "apply ") {
		t.Errorf("stderr has no substitution traces:\n%s", stderr.String())
	}
}

// TestTraceJSONAndMetrics pins the acceptance contract of the
// observability flags: the JSONL trace holds harvest, check, apply, and
// reject events (with reason codes) plus a final metrics block whose
// phase durations account for the run time.
func TestTraceJSONAndMetrics(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	var stdout, stderr bytes.Buffer
	cfg := config{
		circuit: "9sym", repeat: 10, preselect: 12, words: 16, seed: 1,
		inverted: true, traceJSON: tracePath, metrics: true,
	}
	if err := run(context.Background(), cfg, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	events := map[string]int{}
	var metricsRec map[string]any
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		name, _ := rec["event"].(string)
		events[name]++
		switch name {
		case "reject":
			if reason, _ := rec["reason"].(string); reason == "" {
				t.Errorf("reject event without reason code: %v", rec)
			}
		case "metrics":
			metricsRec = rec
		}
	}
	for _, want := range []string{"harvest", "check", "apply", "reject", "metrics"} {
		if events[want] == 0 {
			t.Errorf("trace has no %q events (got %v)", want, events)
		}
	}
	if metricsRec == nil {
		t.Fatalf("no final metrics block")
	}
	phases, ok := metricsRec["phases"].(map[string]any)
	if !ok || len(phases) == 0 {
		t.Fatalf("metrics block has no phases: %v", metricsRec)
	}
	sum := 0.0
	for _, v := range phases {
		sum += v.(float64)
	}
	runtime := metricsRec["runtime_seconds"].(float64)
	if sum < 0.9*runtime || sum > 1.1*runtime {
		t.Errorf("phase durations sum to %.4fs, want within 10%% of runtime %.4fs", sum, runtime)
	}

	// -metrics prints the registry to stderr, not stdout.
	if !strings.Contains(stderr.String(), "phases:") {
		t.Errorf("stderr missing metrics block:\n%s", stderr.String())
	}
	if strings.Contains(stdout.String(), "phases:") {
		t.Errorf("stdout polluted by metrics block")
	}
}

// TestProfilesWritten exercises the pprof hooks end to end.
func TestProfilesWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	cfg := config{
		circuit: "t481", repeat: 10, preselect: 12, words: 16, seed: 1,
		inverted: true, cpuProfile: cpu, memProfile: mem,
	}
	if err := runQuiet(t, cfg); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// Command powderd serves POWDER over HTTP: clients POST technology-
// mapped BLIF circuits and get back asynchronously optimized netlists,
// with streaming progress, cancellation, and metrics.
//
// Usage:
//
//	powderd [-addr :8844] [-workers N] [-queue N] [-lib cells.genlib]
//	        [-store-dir DIR] [-cache-max N]
//
// With -store-dir, every job transition is journaled to a write-ahead
// log under DIR: a crashed or restarted daemon recovers its job table,
// serves finished results, and re-enqueues work that was queued or
// running. The content-addressed result cache answers duplicate
// submissions (same structural circuit, same options) instantly;
// ?no-cache=1 on a submission bypasses it.
//
// API (see the README "Serving" section for curl examples):
//
//	POST   /v1/jobs?timeout=30s&delay-limit=10&max-subs=100&verify=1
//	GET    /v1/jobs/{id}
//	GET    /v1/jobs/{id}/result.blif
//	GET    /v1/jobs/{id}/events        NDJSON progress stream
//	GET    /v1/jobs/{id}/trace         span tree of a traced job
//	DELETE /v1/jobs/{id}
//	GET    /healthz
//	GET    /metrics
//	GET    /debug/status               live queue/worker/span introspection
//	GET    /debug/flight               flight-recorder dump (recent events,
//	                                   spans, requests, counter deltas)
//
// With -trace-sample N, one job in every N records a hierarchical span
// trace (request → queue → run → engine phases → SAT solves); the trace
// ID travels in the job status and the X-Powder-Trace response header,
// and -v access logs carry it so a slow request correlates straight to
// its span tree. A submission that itself carries X-Powder-Trace is
// traced unconditionally under the client's trace ID, and the client
// can stitch its own spans into the tree via POST /v1/jobs/{id}/spans
// (powder -server -trace-perfetto does exactly this).
//
// The process keeps an always-on flight recorder — a bounded ring of
// the most recent job events, completed spans, HTTP requests, and
// periodic metric deltas — dumped at GET /debug/flight and, on SIGQUIT,
// to stderr ahead of the runtime's goroutine dump.
//
// On SIGTERM/SIGINT the daemon stops accepting submissions (503),
// drains queued and in-flight jobs, and exits; jobs still running when
// -drain-timeout expires are cancelled and finish with their best
// result so far.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"powder/internal/cellib"
	"powder/internal/obs"
	"powder/internal/service"
	"powder/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8844", "HTTP listen address")
		workers      = flag.Int("workers", 0, "optimization workers (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "job queue depth; a full queue rejects submissions with 429")
		libPath      = flag.String("lib", "", "genlib library file (default: built-in lib2)")
		maxBody      = flag.Int64("max-body", 16<<20, "largest accepted BLIF body in bytes")
		jobTimeout   = flag.Duration("job-timeout", 5*time.Minute, "default per-job wall-clock budget when the submission sets none (0 = unlimited)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "how long shutdown waits for queued and in-flight jobs before cancelling them")
		eventBuffer  = flag.Int("event-buffer", 0, "per-job event replay buffer (0 = default 4096)")
		traceSample  = flag.Int64("trace-sample", 0, "span-trace one job in every N submissions (1 = every job, 0 = off)")
		traceLimit   = flag.Int("trace-limit", 0, "recorded spans kept per traced job (0 = default 65536)")
		storeDir     = flag.String("store-dir", "", "persist jobs and results here (WAL + snapshots); restarts recover the job table and re-enqueue interrupted work")
		cacheMax     = flag.Int("cache-max", 0, "content-addressed result-cache entries kept, LRU-evicted (0 = default 1024; needs -store-dir or runs in memory)")
		verbose      = flag.Bool("v", false, "log every HTTP request")
	)
	flag.Parse()

	lib := cellib.Lib2()
	if *libPath != "" {
		f, err := os.Open(*libPath)
		if err != nil {
			fail(err)
		}
		parsed, err := cellib.ParseGenlib(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		lib = parsed
	}

	reg := obs.NewRegistry()
	logger := slog.Default()

	// The flight recorder dumps to stderr on SIGQUIT (before the
	// goroutine dump) and samples counter movement on a coarse ticker so
	// its ring carries rate history next to the discrete events.
	obs.FlightDumpOnQuit(reg)
	go func() {
		t := time.NewTicker(10 * time.Second)
		defer t.Stop()
		for range t.C {
			obs.Flight().SampleMetrics(reg)
		}
	}()

	// The durability layer: a WAL-backed job store under -store-dir plus
	// a content-addressed result cache (persisted next to the store, or
	// memory-only without one). A write failure inside the store degrades
	// the daemon to in-memory operation instead of killing it.
	var (
		jobStore *store.Store
		cache    *store.Cache
		cacheDir string
	)
	if *storeDir != "" {
		st, err := store.Open(store.Options{Dir: *storeDir, Registry: reg, Log: logger})
		if err != nil {
			fail(err)
		}
		jobStore = st
		cacheDir = filepath.Join(*storeDir, "cache")
	}
	cache, err := store.OpenCache(cacheDir, *cacheMax, reg, logger)
	if err != nil {
		fail(err)
	}

	svc := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		Library:        lib,
		MaxBodyBytes:   *maxBody,
		DefaultTimeout: *jobTimeout,
		EventBuffer:    *eventBuffer,
		Registry:       reg,
		TraceSample:    *traceSample,
		TraceLimit:     *traceLimit,
		Store:          jobStore,
		Cache:          cache,
	})
	if jobStore != nil {
		requeued, served := svc.Restore()
		log.Printf("powderd: store %s recovered: %d finished jobs served, %d interrupted jobs re-enqueued",
			*storeDir, served, requeued)
	}

	handler := svc.Handler()
	if *verbose {
		handler = logRequests(slog.Default(), handler)
	}
	srv := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("powderd: listening on %s (%d workers, queue %d)", *addr, svc.Workers(), *queue)

	select {
	case err := <-errCh:
		fail(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: refuse new submissions immediately, let queued
	// and in-flight jobs finish, then close the listener. Status and
	// event-stream reads keep working while jobs drain.
	log.Printf("powderd: draining (timeout %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		log.Printf("powderd: drain expired; in-flight jobs were cancelled (%v)", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("powderd: shutdown: %v", err)
	}
	// The store closes after the drain so every finished job's terminal
	// record is journaled (and fsynced) before the process exits.
	if jobStore != nil {
		if err := jobStore.Close(); err != nil {
			log.Printf("powderd: store close: %v", err)
		}
	}
	log.Printf("powderd: bye")
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush keeps the NDJSON event stream flushable through the wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// logRequests is a structured access-log middleware; requests touching
// a traced job log its trace ID (from the X-Powder-Trace response
// header), so a slow request correlates to its span tree.
func logRequests(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration", time.Since(start).Round(time.Microsecond).String(),
		}
		if id := sw.Header().Get(service.TraceHeader); id != "" {
			attrs = append(attrs, "trace", id)
		}
		logger.Info("request", attrs...)
	})
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "powderd:", err)
	os.Exit(1)
}

// Command powderd serves POWDER over HTTP: clients POST technology-
// mapped BLIF circuits and get back asynchronously optimized netlists,
// with streaming progress, cancellation, and metrics.
//
// Usage:
//
//	powderd [-addr :8844] [-workers N] [-queue N] [-lib cells.genlib]
//
// API (see the README "Serving" section for curl examples):
//
//	POST   /v1/jobs?timeout=30s&delay-limit=10&max-subs=100&verify=1
//	GET    /v1/jobs/{id}
//	GET    /v1/jobs/{id}/result.blif
//	GET    /v1/jobs/{id}/events        NDJSON progress stream
//	DELETE /v1/jobs/{id}
//	GET    /healthz
//	GET    /metrics
//
// On SIGTERM/SIGINT the daemon stops accepting submissions (503),
// drains queued and in-flight jobs, and exits; jobs still running when
// -drain-timeout expires are cancelled and finish with their best
// result so far.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"powder/internal/cellib"
	"powder/internal/obs"
	"powder/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8844", "HTTP listen address")
		workers      = flag.Int("workers", 0, "optimization workers (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "job queue depth; a full queue rejects submissions with 429")
		libPath      = flag.String("lib", "", "genlib library file (default: built-in lib2)")
		maxBody      = flag.Int64("max-body", 16<<20, "largest accepted BLIF body in bytes")
		jobTimeout   = flag.Duration("job-timeout", 5*time.Minute, "default per-job wall-clock budget when the submission sets none (0 = unlimited)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "how long shutdown waits for queued and in-flight jobs before cancelling them")
		eventBuffer  = flag.Int("event-buffer", 0, "per-job event replay buffer (0 = default 4096)")
		verbose      = flag.Bool("v", false, "log every HTTP request")
	)
	flag.Parse()

	lib := cellib.Lib2()
	if *libPath != "" {
		f, err := os.Open(*libPath)
		if err != nil {
			fail(err)
		}
		parsed, err := cellib.ParseGenlib(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		lib = parsed
	}

	svc := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		Library:        lib,
		MaxBodyBytes:   *maxBody,
		DefaultTimeout: *jobTimeout,
		EventBuffer:    *eventBuffer,
		Registry:       obs.NewRegistry(),
	})

	handler := svc.Handler()
	if *verbose {
		handler = logRequests(handler)
	}
	srv := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("powderd: listening on %s (%d workers, queue %d)", *addr, svc.Workers(), *queue)

	select {
	case err := <-errCh:
		fail(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: refuse new submissions immediately, let queued
	// and in-flight jobs finish, then close the listener. Status and
	// event-stream reads keep working while jobs drain.
	log.Printf("powderd: draining (timeout %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		log.Printf("powderd: drain expired; in-flight jobs were cancelled (%v)", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("powderd: shutdown: %v", err)
	}
	log.Printf("powderd: bye")
}

// logRequests is a minimal access-log middleware.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "powderd:", err)
	os.Exit(1)
}

// Command powbench regenerates the experiments of the paper:
//
//	powbench -table1      per-circuit results without / with delay constraints
//	powbench -table2      contribution of OS2/IS2/OS3/IS3 to power and area
//	powbench -fig6        the power-delay trade-off curve
//	powbench -seq         the sequential family (steady-state fixpoint +
//	                      optimization at the register cut)
//	powbench -all         everything
//
// -circuits restricts the run to a comma-separated subset; -parallel N
// fans the per-circuit runs out over the internal/service worker pool
// (tables and reports stay in circuit order; the per-circuit CPU column
// then measures wall time under contention); -csv writes the Table 1
// rows to a file for plotting; -json writes the machine-readable run
// report (Table 1 rows plus per-phase timings, checker effort, and
// reject-reason counts) used to track the performance trajectory across
// changes (the BENCH_*.json format); -trajectory appends one compact
// benchmark entry (git rev, wall time, power before/after, proof count,
// peak RSS) to a powder-trajectory/v1 file, and -bench-baseline fails
// the run when it regresses more than 10% power or 2x wall time against
// the newest entry of a committed baseline.
//
// Observability: -trace-json streams every core.Optimize run's structured
// events as JSON Lines, -trace-perfetto records the Table 1 runs' span
// traces as Chrome/Perfetto trace-event JSON, -metrics prints the
// aggregated metrics registry to stderr, and -cpuprofile/-memprofile
// write pprof profiles.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"powder/internal/activity"
	"powder/internal/circuits"
	"powder/internal/expt"
	"powder/internal/obs"
	"powder/internal/obs/trace"
	"powder/internal/seq"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "run the Table 1 experiment")
		table2   = flag.Bool("table2", false, "run the Table 2 experiment (same runs as Table 1)")
		fig6     = flag.Bool("fig6", false, "run the Figure 6 power-delay trade-off")
		baseline = flag.Bool("baseline", false, "compare redundancy removal (ref [1]) against POWDER")
		seqRun   = flag.Bool("seq", false, "run the sequential family (fixpoint + register-cut optimization)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list the benchmark circuits and exit")
		subset   = flag.String("circuits", "", "comma-separated circuit subset (default: the paper's sets)")
		seqSubst = flag.String("seq-circuits", "", "comma-separated sequential-circuit subset")
		csvPath  = flag.String("csv", "", "write Table 1 rows as CSV to this file")
		jsonPath = flag.String("json", "", "write the JSON run report (Table 1 rows + per-phase timings) to this file")

		trajectory    = flag.String("trajectory", "", "append one benchmark-trajectory entry (git rev, wall time, power, proofs, peak RSS) to this JSON file")
		benchBaseline = flag.String("bench-baseline", "", "fail if this run regresses >10% power or >2x wall time against the newest entry of this trajectory file")
		probsPath     = flag.String("probs", "", "per-primary-input signal probability file (name=p lines); entries are matched by input name on every circuit, unmatched inputs stay at 0.5")
		activityPath  = flag.String("activity", "", "workload switching-activity dump (VCD or SAIF, sniffed by content); bound by input name onto every circuit")

		quiet    = flag.Bool("quiet", false, "suppress per-circuit progress")
		mapArea  = flag.Bool("map-area", false, "use area-cost initial mapping instead of power-aware")
		preOpt   = flag.Bool("preopt", false, "pre-optimize initial circuits with redundancy removal (POSE-grade starting points)")
		timeout  = flag.Duration("timeout", 0, "per-circuit wall-clock budget; expired runs report their best result (0 = none)")
		retries  = flag.Int("max-retries", 0, "per-circuit budget-escalation retries for aborted proofs (0 = no escalation)")
		parallel = flag.Int("parallel", 1, "run circuits concurrently on this many workers (0 = GOMAXPROCS); output stays in circuit order")
		par      = flag.Int("par", 1, "per-circuit engine parallelism: fanout-region workers inside each optimization (<=1 = sequential engine)")

		server     = flag.String("server", "", "run the suite against a powderd daemon at this base URL instead of in-process (honors -circuits, -timeout, -quiet)")
		srvNoCache = flag.Bool("no-cache", false, "with -server: bypass the daemon's content-addressed result cache")

		traceJSON     = flag.String("trace-json", "", "write structured run events as JSON Lines to this file")
		tracePerfetto = flag.String("trace-perfetto", "", "write the Table 1 runs' span traces as Chrome/Perfetto trace-event JSON to this file")
		metrics       = flag.Bool("metrics", false, "collect a metrics registry over all runs and print it to stderr")
		cpuProfile    = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile    = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	if *list {
		for _, s := range circuits.All() {
			fmt.Printf("%-10s %s\n", s.Name, s.Kind)
		}
		for _, s := range circuits.SeqAll() {
			fmt.Printf("%-10s %s (sequential, %d latches)\n", s.Name, s.Kind, s.Latches)
		}
		return
	}
	if *server != "" {
		if err := runRemote(*server, *subset, *timeout, *srvNoCache, *quiet); err != nil {
			fail(err)
		}
		return
	}
	if (*jsonPath != "" || *trajectory != "" || *benchBaseline != "") && !(*table1 || *table2 || *all) {
		// The run report and the benchmark trajectory are assembled from
		// the Table 1 suite.
		*table1 = true
	}
	if !*table1 && !*table2 && !*fig6 && !*baseline && !*seqRun && !*all {
		flag.Usage()
		os.Exit(2)
	}

	if *cpuProfile != "" {
		stopProf, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			fail(err)
		}
		defer stopProf()
	}

	var sinks []obs.Sink
	if *traceJSON != "" {
		f, err := os.Create(*traceJSON)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		sinks = append(sinks, obs.NewJSONLSink(f))
	}
	var reg *obs.Registry
	if *metrics || *traceJSON != "" || *jsonPath != "" {
		reg = obs.NewRegistry()
	}
	observer := obs.New(obs.Multi(sinks...), reg)
	// SIGQUIT dumps the flight recorder (with the registry's counter
	// movement folded in) ahead of the runtime's goroutine dump.
	obs.FlightDumpOnQuit(reg)

	var tracer *trace.Tracer
	if *tracePerfetto != "" {
		tracer = trace.New("powbench", trace.Options{
			Obs:         observer,
			DropCounter: reg.Counter("trace.dropped.spans"),
		})
	}

	opts := expt.RunOptions{MapArea: *mapArea, PreOptimize: *preOpt, Obs: observer, Tracer: tracer}
	if *probsPath != "" && *activityPath != "" {
		fail(fmt.Errorf("use either -probs or -activity, not both (the dump already carries input probabilities)"))
	}
	if *probsPath != "" {
		m, err := loadProbsMap(*probsPath)
		if err != nil {
			fail(err)
		}
		opts.InputProbs = m
	}
	if *activityPath != "" {
		prof, err := loadProfile(*activityPath)
		if err != nil {
			fail(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "activity: %s (%s, %d signals, %d ignored, %d cycles)\n",
				*activityPath, prof.Source, len(prof.Signals), prof.Ignored, prof.Cycles)
		}
		opts.Activity = prof
	}
	opts.Core.Timeout = *timeout
	opts.Core.MaxRetries = *retries
	opts.Core.Parallelism = *par
	opts.Parallel = *parallel
	if *parallel <= 0 {
		opts.Parallel = runtime.GOMAXPROCS(0)
	}
	if !*quiet {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	pick := func(defaults []circuits.Spec) []circuits.Spec {
		if *subset == "" {
			return defaults
		}
		var out []circuits.Spec
		for _, name := range strings.Split(*subset, ",") {
			s, err := circuits.ByName(strings.TrimSpace(name))
			if err != nil {
				fail(err)
			}
			out = append(out, s)
		}
		return out
	}

	var (
		suite     *expt.Suite
		suiteWall time.Duration
		seqSuite  *expt.SeqSuite
	)
	if *table1 || *table2 || *all {
		suiteStart := time.Now()
		var err error
		suite, err = expt.RunSuite(pick(circuits.All()), opts)
		if err != nil {
			fail(err)
		}
		suiteWall = time.Since(suiteStart)
		if *table1 || *all {
			expt.RenderTable1(os.Stdout, suite)
			fmt.Println()
		}
		if *table2 || *all {
			expt.RenderTable2(os.Stdout, suite)
			fmt.Println()
		}
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			if err != nil {
				fail(err)
			}
			expt.RenderCSV(f, suite)
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
		}
	}

	if *seqRun || *all {
		pickSeq := func(defaults []circuits.SeqSpec) []circuits.SeqSpec {
			if *seqSubst == "" {
				return defaults
			}
			var out []circuits.SeqSpec
			for _, name := range strings.Split(*seqSubst, ",") {
				s, err := circuits.SeqByName(strings.TrimSpace(name))
				if err != nil {
					fail(err)
				}
				out = append(out, s)
			}
			return out
		}
		var err error
		seqSuite, err = expt.RunSeqSuite(pickSeq(circuits.SeqAll()), opts)
		if err != nil {
			fail(err)
		}
		expt.RenderSeqTable(os.Stdout, seqSuite)
		fmt.Println()
	}

	if suite != nil {
		if *jsonPath != "" {
			var snap *obs.Snapshot
			if reg != nil {
				s := reg.Snapshot()
				snap = &s
			}
			report := expt.BuildReport(suite, expt.ReportOptions{
				MapArea: *mapArea, PreOptimize: *preOpt,
			}, snap)
			if seqSuite != nil {
				report.AttachSeq(seqSuite)
			}
			f, err := os.Create(*jsonPath)
			if err != nil {
				fail(err)
			}
			if err := expt.WriteReportJSON(f, report); err != nil {
				f.Close()
				fail(err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
		}
		if *trajectory != "" || *benchBaseline != "" {
			entry := expt.BuildTrajectoryEntry(suite, suiteWall)
			entry.Par = *par
			if *benchBaseline != "" {
				// The regression gate runs before the append so a CI job
				// pointing both flags at the same file never compares the
				// fresh entry against itself.
				base, err := expt.LoadTrajectory(*benchBaseline)
				if err != nil {
					fail(err)
				}
				if err := expt.CheckRegression(entry, base, 10, 2); err != nil {
					fail(err)
				}
				fmt.Fprintf(os.Stderr, "no regression vs %s\n", *benchBaseline)
			}
			if *trajectory != "" {
				if err := expt.AppendTrajectory(*trajectory, entry); err != nil {
					fail(err)
				}
				fmt.Fprintf(os.Stderr, "appended trajectory entry to %s (rev %s, %.1fs, %.1f%% reduction)\n",
					*trajectory, entry.GitRev, entry.WallSeconds, entry.ReductionPct)
			}
		}
	}

	if *baseline || *all {
		rows, err := expt.RunBaseline(pick(circuits.All()), opts)
		if err != nil {
			fail(err)
		}
		expt.RenderBaseline(os.Stdout, rows)
		fmt.Println()
	}

	if *fig6 || *all {
		points, err := expt.RunTradeoff(pick(circuits.Fig6Subset()), nil, opts)
		if err != nil {
			fail(err)
		}
		expt.RenderTradeoff(os.Stdout, points)
	}

	if tracer != nil {
		f, err := os.Create(*tracePerfetto)
		if err != nil {
			fail(err)
		}
		spans := tracer.Snapshot()
		if err := trace.WritePerfetto(f, spans); err != nil {
			f.Close()
			fail(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s (%d spans, %d dropped)\n", *tracePerfetto, len(spans), tracer.Dropped())
	}

	if reg != nil {
		snap := reg.Snapshot()
		observer.Emit("metrics", obs.Fields{
			"counters":   snap.Counters,
			"histograms": snap.Histograms,
		})
		if *metrics {
			snap.WriteText(os.Stderr)
		}
	}
	if *memProfile != "" {
		if err := obs.WriteHeapProfile(*memProfile); err != nil {
			fail(err)
		}
	}
}

// loadProbsMap reads a "name=p" probability file into the name-keyed
// map expt.RunOptions consumes (suite circuits differ in their input
// sets, so resolution happens per circuit).
func loadProbsMap(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	entries, err := seq.ParseProbs(f)
	if err != nil {
		return nil, err
	}
	m := make(map[string]float64, len(entries))
	for _, e := range entries {
		m[e.Name] = e.P
	}
	return m, nil
}

// loadProfile reads a VCD or SAIF activity dump (sniffed by content).
func loadProfile(path string) (*activity.Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	prof, err := activity.Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return prof, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "powbench:", err)
	os.Exit(1)
}

// Command powbench regenerates the experiments of the paper:
//
//	powbench -table1      per-circuit results without / with delay constraints
//	powbench -table2      contribution of OS2/IS2/OS3/IS3 to power and area
//	powbench -fig6        the power-delay trade-off curve
//	powbench -all         everything
//
// -circuits restricts the run to a comma-separated subset; -csv writes the
// Table 1 rows to a file for plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"powder/internal/circuits"
	"powder/internal/expt"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "run the Table 1 experiment")
		table2   = flag.Bool("table2", false, "run the Table 2 experiment (same runs as Table 1)")
		fig6     = flag.Bool("fig6", false, "run the Figure 6 power-delay trade-off")
		baseline = flag.Bool("baseline", false, "compare redundancy removal (ref [1]) against POWDER")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list the benchmark circuits and exit")
		subset   = flag.String("circuits", "", "comma-separated circuit subset (default: the paper's sets)")
		csvPath  = flag.String("csv", "", "write Table 1 rows as CSV to this file")
		quiet    = flag.Bool("quiet", false, "suppress per-circuit progress")
		mapArea  = flag.Bool("map-area", false, "use area-cost initial mapping instead of power-aware")
		preOpt   = flag.Bool("preopt", false, "pre-optimize initial circuits with redundancy removal (POSE-grade starting points)")
	)
	flag.Parse()

	if *list {
		for _, s := range circuits.All() {
			fmt.Printf("%-10s %s\n", s.Name, s.Kind)
		}
		return
	}
	if !*table1 && !*table2 && !*fig6 && !*baseline && !*all {
		flag.Usage()
		os.Exit(2)
	}

	opts := expt.RunOptions{MapArea: *mapArea, PreOptimize: *preOpt}
	if !*quiet {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	pick := func(defaults []circuits.Spec) []circuits.Spec {
		if *subset == "" {
			return defaults
		}
		var out []circuits.Spec
		for _, name := range strings.Split(*subset, ",") {
			s, err := circuits.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "powbench:", err)
				os.Exit(1)
			}
			out = append(out, s)
		}
		return out
	}

	if *table1 || *table2 || *all {
		suite, err := expt.RunSuite(pick(circuits.All()), opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "powbench:", err)
			os.Exit(1)
		}
		if *table1 || *all {
			expt.RenderTable1(os.Stdout, suite)
			fmt.Println()
		}
		if *table2 || *all {
			expt.RenderTable2(os.Stdout, suite)
			fmt.Println()
		}
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "powbench:", err)
				os.Exit(1)
			}
			expt.RenderCSV(f, suite)
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
		}
	}

	if *baseline || *all {
		rows, err := expt.RunBaseline(pick(circuits.All()), opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "powbench:", err)
			os.Exit(1)
		}
		expt.RenderBaseline(os.Stdout, rows)
		fmt.Println()
	}

	if *fig6 || *all {
		points, err := expt.RunTradeoff(pick(circuits.Fig6Subset()), nil, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "powbench:", err)
			os.Exit(1)
		}
		expt.RenderTradeoff(os.Stdout, points)
	}
}

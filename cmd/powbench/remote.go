package main

import (
	"bytes"
	"context"
	"fmt"
	"net/url"
	"os"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"powder/internal/blif"
	"powder/internal/cellib"
	"powder/internal/circuits"
	"powder/internal/client"
	"powder/internal/service"
	"powder/internal/synth"
)

// remoteRow is one circuit's outcome from a powderd run.
type remoteRow struct {
	name   string
	status service.Status
	err    error
}

// runRemote is powbench's -server mode: the Table 1 circuit set (or
// the -circuits subset) is compiled, submitted to a powderd daemon
// concurrently, and rendered as a compact table once every job
// finishes. Repeat runs exercise the daemon's result cache — the
// "cached" column shows which rows came back without an optimization
// — which is how EXPERIMENTS.md measures cache-hit latency against a
// full run.
func runRemote(server, subset string, timeout time.Duration, noCache, quiet bool) error {
	specs := circuits.All()
	if subset != "" {
		specs = specs[:0]
		for _, name := range strings.Split(subset, ",") {
			s, err := circuits.ByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			specs = append(specs, s)
		}
	}

	lib := cellib.Lib2()
	q := url.Values{}
	if timeout > 0 {
		q.Set("timeout", timeout.String())
	}
	if noCache {
		q.Set("no-cache", "1")
	}
	c := client.New(server, client.Options{})
	ctx := context.Background()

	rows := make([]remoteRow, len(specs))
	var wg sync.WaitGroup
	start := time.Now()
	for i, spec := range specs {
		rows[i].name = spec.Name
		nl, err := synth.Compile(spec.Build(), lib, synth.Options{Mode: synth.CostPower})
		if err != nil {
			rows[i].err = err
			continue
		}
		var buf bytes.Buffer
		if err := blif.WriteModel(&buf, &blif.Model{
			Netlist: nl, NumInputs: len(nl.Inputs()), NumOutputs: len(nl.Outputs()),
		}); err != nil {
			rows[i].err = err
			continue
		}
		body := buf.Bytes()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := c.Submit(ctx, body, q)
			if err != nil {
				rows[i].err = err
				return
			}
			if !quiet {
				fmt.Fprintf(os.Stderr, "%-10s job %s (cached %t)\n", rows[i].name, st.ID, st.Cached)
			}
			rows[i].status, rows[i].err = c.Wait(ctx, st.ID, 100*time.Millisecond)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "circuit\tpower\topt.\tred. %\tsubs\tserver s\tcached")
	var failed int
	for _, r := range rows {
		if r.err != nil {
			fmt.Fprintf(w, "%s\terror: %v\n", r.name, r.err)
			failed++
			continue
		}
		res := r.status.Result
		if r.status.State != service.StateCompleted || res == nil {
			fmt.Fprintf(w, "%s\t%s: %s\n", r.name, r.status.State, r.status.Error)
			failed++
			continue
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%d\t%.2f\t%t\n",
			r.name, res.InitialPower, res.FinalPower, res.ReductionPct,
			res.Applied, res.RuntimeSeconds, r.status.Cached)
	}
	w.Flush()
	fmt.Printf("%d circuits via %s in %s\n", len(rows), server, wall.Round(time.Millisecond))
	if failed > 0 {
		return fmt.Errorf("%d of %d circuits failed", failed, len(rows))
	}
	return nil
}

module powder

go 1.22
